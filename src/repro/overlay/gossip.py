"""TTL-bounded gossip for background (bottom-layer) inconsistency detection.

The paper's detection framework "uses gossip-based protocol to check in the
background any missed inconsistency by the top-layer" (Section 4.3), with a
TTL on the traversal of detection messages to bound the delay (Section
4.4.2).  The reproduction follows the lpbcast style: each round every
participating node sends its version *digest* (per-writer counts, metadata
value, last-consistent time) to ``fanout`` uniformly chosen peers; receivers
compare the digest against their own replica, report any inconsistency
through a callback, and forward the digest with the TTL decremented until it
reaches zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.transport import Clock, Message, PeriodicTimer, Transport
from repro.versioning.version_vector import Ordering, VersionVector


PROTOCOL = "overlay.gossip"


@dataclass(frozen=True)
class GossipDigest:
    """Compact replica summary exchanged by the gossip protocol."""

    object_id: str
    origin: str
    counts: Tuple[Tuple[str, int], ...]
    metadata: float
    last_consistent_time: float
    issued_at: float
    ttl: int

    def version_vector(self) -> VersionVector:
        return VersionVector(dict(self.counts))

    def decremented(self) -> "GossipDigest":
        return GossipDigest(object_id=self.object_id, origin=self.origin,
                            counts=self.counts, metadata=self.metadata,
                            last_consistent_time=self.last_consistent_time,
                            issued_at=self.issued_at, ttl=self.ttl - 1)


@dataclass
class GossipConfig:
    """Gossip parameters (defaults follow common lpbcast-style settings)."""

    round_period: float = 10.0
    fanout: int = 3
    ttl: int = 3
    #: approximate digest size on the wire (bytes); version vectors "only
    #: need several bits" per entry, so digests are small
    digest_bytes: int = 128

    def __post_init__(self) -> None:
        if self.round_period <= 0:
            raise ValueError("round_period must be positive")
        if self.fanout < 1:
            raise ValueError("fanout must be >= 1")
        if self.ttl < 1:
            raise ValueError("ttl must be >= 1")


#: callback signature: (observer_node, digest, observer_counts) -> None
DetectionCallback = Callable[[str, GossipDigest, VersionVector], None]


class GossipService:
    """Runs background gossip among a (typically bottom-layer) node set."""

    #: when a receiver's dedupe set exceeds this, sightings older than
    #: ``SEEN_HORIZON_ROUNDS`` round periods are swept out — digests cannot
    #: arrive that late, so dedupe behaviour is unchanged while the state
    #: stays bounded over arbitrarily long runs
    SEEN_SWEEP_THRESHOLD = 4096
    SEEN_HORIZON_ROUNDS = 8

    def __init__(self, clock: Clock, transport: Transport, *,
                 config: Optional[GossipConfig] = None,
                 membership: Callable[[str], Sequence[str]],
                 local_digest: Callable[[str, str], Optional[GossipDigest]],
                 on_inconsistency: Optional[DetectionCallback] = None,
                 on_digest: Optional[Callable[[str, GossipDigest], None]] = None) -> None:
        """
        Parameters
        ----------
        membership:
            ``membership(object_id)`` returns the node ids participating in
            gossip for that object (IDEA passes the bottom layer).
        local_digest:
            ``local_digest(node_id, object_id)`` returns the node's current
            digest, or ``None`` if it holds no replica.
        on_inconsistency:
            Invoked whenever a received digest differs from the receiver's
            local state.
        on_digest:
            Invoked as ``(receiver, digest)`` for every received digest —
            the piggyback hook the stability frontier rides (it must not
            schedule events; bookkeeping only).
        """
        self.clock = clock
        self.transport = transport
        self.config = config or GossipConfig()
        self._membership = membership
        self._local_digest = local_digest
        self._on_inconsistency = on_inconsistency
        self._on_digest = on_digest
        self._rng = clock.random.stream("overlay.gossip")
        self._objects: List[str] = []
        self._timer: Optional[PeriodicTimer] = None
        self._rounds = 0
        self._detections: List[Tuple[float, str, str]] = []
        self._seen: Dict[str, set] = {}
        #: per-receiver size above which the next dedupe sweep runs; doubles
        #: past the surviving set so a steady state larger than the base
        #: threshold cannot trigger a full rebuild on every message
        self._seen_sweep_at: Dict[str, int] = {}
        # Nodes receive gossip through their normal handler table.
        self._registered_nodes: set = set()

    # ------------------------------------------------------------ lifecycle
    def watch_object(self, object_id: str) -> None:
        """Start gossiping digests of ``object_id``."""
        if object_id not in self._objects:
            self._objects.append(object_id)

    def start(self) -> None:
        if self._timer is not None:
            return
        self._timer = PeriodicTimer(self.clock, self.run_round,
                                    period=self.config.round_period,
                                    label="gossip-round").start()

    def stop(self) -> None:
        """Cancel the periodic rounds (idempotent)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    # ---------------------------------------------------------------- rounds
    def run_round(self) -> int:
        """Run one gossip round for every watched object; returns msg count."""
        self._rounds += 1
        sent = 0
        for object_id in self._objects:
            members = list(self._membership(object_id))
            for node_id in members:
                if not self.transport.has_node(node_id):
                    continue  # crashed member gossips nothing this round
                digest = self._local_digest(node_id, object_id)
                if digest is None:
                    continue
                digest = GossipDigest(
                    object_id=digest.object_id, origin=digest.origin,
                    counts=digest.counts, metadata=digest.metadata,
                    last_consistent_time=digest.last_consistent_time,
                    issued_at=self.clock.now, ttl=self.config.ttl)
                sent += self._forward(node_id, digest, members)
        return sent

    def _forward(self, sender: str, digest: GossipDigest, members: Sequence[str]) -> int:
        peers = [m for m in members if m != sender and m != digest.origin]
        if not peers:
            return 0
        fanout = min(self.config.fanout, len(peers))
        chosen_idx = self._rng.choice(len(peers), size=fanout, replace=False)
        chosen = [peers[idx] for idx in sorted(chosen_idx)]
        for peer in chosen:
            self._ensure_handler(peer)
        # One shared payload for the whole fan-out; receivers treat both the
        # digest and the member list as read-only.
        self.transport.send_many(sender, chosen, protocol=PROTOCOL,
                               msg_type="gossip_digest",
                               payload={"digest": digest,
                                        "members": list(members)},
                               size_bytes=self.config.digest_bytes)
        return len(chosen)

    def _ensure_handler(self, node_id: str) -> None:
        if node_id in self._registered_nodes:
            return
        if not self.transport.has_node(node_id):
            # Peer is down; the send will be a counted drop, and the handler
            # is registered on its first post-recovery selection instead.
            return
        node = self.transport.node(node_id)
        node.register_handler("gossip_digest", self._handle_digest)
        self._registered_nodes.add(node_id)

    # ------------------------------------------------------------- receiving
    def _handle_digest(self, message: Message) -> None:
        digest: GossipDigest = message.payload["digest"]
        members: List[str] = message.payload["members"]
        receiver = message.dst

        dedupe_key = (digest.origin, digest.object_id, digest.issued_at)
        seen = self._seen.setdefault(receiver, set())
        already_seen = dedupe_key in seen
        seen.add(dedupe_key)
        if len(seen) > self._seen_sweep_at.get(receiver, self.SEEN_SWEEP_THRESHOLD):
            # Bounded-state sweep: a digest issued many round periods ago can
            # no longer be in flight, so forgetting its sighting cannot
            # resurrect a duplicate forward.
            horizon = self.clock.now - (self.SEEN_HORIZON_ROUNDS
                                      * self.config.round_period)
            kept = {k for k in seen if k[2] >= horizon}
            self._seen[receiver] = kept
            self._seen_sweep_at[receiver] = max(self.SEEN_SWEEP_THRESHOLD,
                                                2 * len(kept))

        if self._on_digest is not None:
            self._on_digest(receiver, digest)
        local = self._local_digest(receiver, digest.object_id)
        if local is not None:
            local_vv = local.version_vector()
            if local_vv.compare(digest.version_vector()) is not Ordering.EQUAL:
                self._detections.append((self.clock.now, receiver, digest.object_id))
                if self._on_inconsistency is not None:
                    self._on_inconsistency(receiver, digest, local_vv)

        # Forward onwards while TTL remains and this is the first sighting.
        if digest.ttl > 1 and not already_seen:
            self._forward(receiver, digest.decremented(), members)

    # ------------------------------------------------------------- inspection
    @property
    def rounds_completed(self) -> int:
        return self._rounds

    def detections(self, object_id: Optional[str] = None) -> List[Tuple[float, str, str]]:
        """(time, observer, object) tuples for every detected inconsistency."""
        if object_id is None:
            return list(self._detections)
        return [d for d in self._detections if d[2] == object_id]
