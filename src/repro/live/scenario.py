"""Backend-agnostic conformance scenario: the simulator as oracle.

One :class:`ScenarioSpec` — a fixed schedule of local writes, demanded
resolutions and end-of-run truncations over a small replica group — runs on
either backend:

* :func:`run_sim_scenario` executes it on the discrete-event simulator
  (``repro.sim``), producing per-node protocol outcomes;
* :func:`run_live_scenario_inprocess` executes the same spec over real
  sockets (one :class:`~repro.live.transport.LiveTransport` per node on one
  event loop — the multiprocess deployment reuses the same per-node stack
  via :mod:`repro.live.deployment`).

The spec is phase-separated so its *protocol outcomes* are functions of the
schedule, not of message timing: all initial writes finish well before the
demanded resolutions; every node then issues one post-resolution write, so
every peer's final announced digest carries the merged per-writer counts
and the stability frontier each node computes at truncation time is exactly
the merged vector — identical on any backend whose transport delivers
messages within the (generous) phase gaps.

What the oracle compares (counts and sets, never timings):

* writes attempted/applied per node and object,
* detection evaluations run per node and object (one per local write),
* resolutions completed — the ``(object, initiator)`` multiset published as
  :class:`~repro.runtime.events.ResolutionCompleted`,
* final per-writer version-vector counts on every node,
* log entries folded by stability-driven truncation on every node.

What it deliberately excludes: gossip round/message counts (wall-clock
periodic timers drift against the workload; both backends must merely show
*nonzero* gossip activity), latencies, and anything carrying timestamps.
"""

from __future__ import annotations

import asyncio
import os
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.config import AdaptationMode, IdeaConfig
from repro.live.clock import LiveClock
from repro.live.node import LiveNode
from repro.live.transport import Address, LiveTransport
from repro.overlay.gossip import GossipConfig, GossipDigest, GossipService
from repro.runtime.events import ResolutionCompleted
from repro.runtime.node_runtime import NodeRuntime
from repro.store.filesystem import ReplicatedStore

#: gossip parameters used by conformance scenarios: fast rounds so even a
#: few-second run shows bottom-layer activity
SCENARIO_GOSSIP = GossipConfig(round_period=0.5, fanout=2, ttl=2)


@dataclass
class ScenarioSpec:
    """A deterministic, backend-neutral workload schedule.

    ``writes`` entries are ``(time, node, object, metadata_delta)``;
    ``resolutions`` entries are ``(time, node, object)`` — the node calls
    ``demand_active_resolution`` on the object.  At ``truncate_at`` every
    node truncates every object over the full participant set with
    ``keep_window=0.0``.
    """

    nodes: List[str]
    objects: List[str]
    writes: List[Tuple[float, str, str, float]]
    resolutions: List[Tuple[float, str, str]]
    truncate_at: float
    duration: float
    seed: int = 7

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ScenarioSpec":
        return cls(nodes=list(data["nodes"]), objects=list(data["objects"]),
                   writes=[tuple(w) for w in data["writes"]],
                   resolutions=[tuple(r) for r in data["resolutions"]],
                   truncate_at=data["truncate_at"],
                   duration=data["duration"], seed=data["seed"])


def default_scenario(n_nodes: int = 4, n_objects: int = 2, *,
                     seed: int = 7, time_scale: float = 1.0) -> ScenarioSpec:
    """Build the standard conformance schedule.

    Phases (times scaled by ``time_scale``): initial writes in [0.3, 1.6),
    one demanded resolution per object at ~2.0, one post-resolution write
    per (node, object) at ~3.0 (so every final digest carries the merged
    counts), truncation at 3.9, run ends at 4.4.
    """
    nodes = [f"n{i:02d}" for i in range(n_nodes)]
    objects = [f"obj{j}" for j in range(n_objects)]
    writes: List[Tuple[float, str, str, float]] = []
    for i, node in enumerate(nodes):
        for j, obj in enumerate(objects):
            for k in range(2):
                t = (0.3 + 0.08 * i + 0.35 * k + 0.05 * j) * time_scale
                writes.append((t, node, obj, 1.0 + i + 0.5 * k))
            # Post-resolution write: refreshes every peer's digest of this
            # node with the merged counts, making the stability frontier a
            # deterministic function of the schedule.
            writes.append(((3.0 + 0.02 * i + 0.01 * j) * time_scale,
                           node, obj, 0.25))
    resolutions = [((2.0 + 0.15 * j) * time_scale, nodes[j % n_nodes], obj)
                   for j, obj in enumerate(objects)]
    return ScenarioSpec(nodes=nodes, objects=objects, writes=writes,
                        resolutions=resolutions,
                        truncate_at=3.9 * time_scale,
                        duration=4.4 * time_scale, seed=seed)


def scenario_config() -> IdeaConfig:
    """Middleware config for oracle runs: no background rounds, no
    hint-driven auto resolution — every resolution in the outcome set was
    demanded by the schedule."""
    return IdeaConfig(mode=AdaptationMode.HINT_BASED, hint_level=0.0,
                      background_period=None)


# --------------------------------------------------------------------------
# per-node stack (backend-agnostic once the endpoint exists)
# --------------------------------------------------------------------------

class NodeStack:
    """Everything one node runs: store, runtime, per-object middleware,
    and the outcome counters the oracle compares.

    The gossip service is attached by the backend runner (``self.gossip``):
    the simulator mirrors the deployment with *one* service routing to
    every stack, while live mode runs one service per node (only the local
    node's digests leave each process)."""

    def __init__(self, node, spec: ScenarioSpec) -> None:
        self.node = node
        self.spec = spec
        self.store = ReplicatedStore(node.node_id)
        self.runtime = NodeRuntime(node, self.store)
        self.middlewares = {
            obj: self.runtime.attach(obj, scenario_config(),
                                     top_layer_provider=lambda: spec.nodes)
            for obj in spec.objects
        }
        self.writes_attempted: Dict[str, int] = {o: 0 for o in spec.objects}
        self.writes_applied: Dict[str, int] = {o: 0 for o in spec.objects}
        self.folded: Dict[str, int] = {o: 0 for o in spec.objects}
        self.resolutions: List[Tuple[str, str, str]] = []
        self.digests_observed = 0
        self.gossip: Optional[GossipService] = None
        self.runtime.bus.subscribe(ResolutionCompleted, self._on_resolved)

    # ------------------------------------------------------------- protocol
    def _on_resolved(self, event: ResolutionCompleted) -> None:
        self.resolutions.append((event.object_id, event.initiator, event.kind))

    def local_gossip_digest(self, object_id: str) -> Optional[GossipDigest]:
        """This node's current gossip digest (None while it has no replica)."""
        if not self.node.alive or not self.store.has_replica(object_id):
            return None
        replica = self.store.replica(object_id)
        counts = tuple(sorted(replica.vector.counts().as_dict().items()))
        return GossipDigest(
            object_id=object_id, origin=self.node.node_id, counts=counts,
            metadata=replica.metadata,
            last_consistent_time=replica.vector.last_consistent_time,
            issued_at=self.node.clock.now, ttl=SCENARIO_GOSSIP.ttl)

    def observe_gossip(self, digest: GossipDigest) -> None:
        """A gossip digest arrived at this node: feed the frontier."""
        self.digests_observed += 1
        middleware = self.middlewares.get(digest.object_id)
        if middleware is not None:
            middleware.detection.observe_counts(digest.origin,
                                                digest.version_vector())

    # ------------------------------------------------------------- schedule
    def schedule(self, from_time: float = 0.0) -> None:
        """Install this node's share of the spec onto its clock.

        ``from_time`` supports recovering incarnations: entries at or
        before it are skipped (they belong to the pre-crash life), the rest
        are scheduled at their absolute times — which on a rebased live
        clock land at the same wall-clock instants the original timeline
        promised.
        """
        clock = self.node.clock
        node_id = self.node.node_id
        for when, node, obj, delta in self.spec.writes:
            if node == node_id and when > from_time:
                clock.call_at(when, self._do_write, arg=(obj, delta))
        for when, node, obj in self.spec.resolutions:
            if node == node_id and when > from_time:
                clock.call_at(when, self._do_resolution, arg=obj)
        if self.spec.truncate_at > from_time:
            clock.call_at(self.spec.truncate_at, self._do_truncate)
        if self.gossip is not None:
            self.gossip.start()

    # The alive guards below are the client's view of crash-stop: a fault
    # plan that downs this node means no client can reach it, so schedule
    # entries landing in the downtime are neither attempted nor counted —
    # on the live backend the process is simply gone at those instants.
    def _do_write(self, write: Tuple[str, float]) -> None:
        if not self.node.alive:
            return
        obj, delta = write
        self.writes_attempted[obj] += 1
        outcome = self.middlewares[obj].write(
            payload={"writer": self.node.node_id,
                     "n": self.writes_attempted[obj]},
            metadata_delta=delta)
        if outcome is not None:
            self.writes_applied[obj] += 1

    def _do_resolution(self, obj: str) -> None:
        if not self.node.alive:
            return
        self.middlewares[obj].demand_active_resolution()

    def _do_truncate(self) -> None:
        if not self.node.alive:
            return
        for obj, middleware in self.middlewares.items():
            self.folded[obj] = middleware.truncate_stable(self.spec.nodes,
                                                          keep_window=0.0)

    # -------------------------------------------------------------- outcome
    def outcome(self) -> Dict[str, Any]:
        final_counts = {}
        for obj in self.spec.objects:
            replica = self.store.replica(obj)
            final_counts[obj] = dict(sorted(
                replica.vector.counts().as_dict().items()))
        return {
            "node_id": self.node.node_id,
            "writes_attempted": dict(self.writes_attempted),
            "writes_applied": dict(self.writes_applied),
            "detections_run": {
                obj: self.middlewares[obj].detection.detections_run
                for obj in self.spec.objects},
            "resolutions": sorted(list(r) for r in self.resolutions),
            "final_counts": final_counts,
            "folded": dict(self.folded),
            "gossip_rounds": (self.gossip.rounds_completed
                              if self.gossip is not None else 0),
            "digests_observed": self.digests_observed,
            "messages_sent": {k: v for k, v
                              in self.node.transport.stats.sent.items()},
        }

    def shutdown(self) -> None:
        if self.gossip is not None:
            self.gossip.stop()  # idempotent: sim stacks share one service


# --------------------------------------------------------------------------
# simulator backend (the oracle)
# --------------------------------------------------------------------------

def run_sim_scenario(spec: ScenarioSpec, *, latency: float = 0.02,
                     fault_plan: Any = None) -> Dict[str, Dict[str, Any]]:
    """Run the spec on the discrete-event simulator; returns per-node
    outcomes keyed by node id.

    With a ``fault_plan`` (:class:`~repro.scenarios.plan.FaultPlan`) the
    plan's actions are scheduled on simulated time: crashes call
    ``node.fail()``, recoveries ``node.recover()``, partitions/heals/loss
    changes go to the network — the sim half of the fault-tolerant oracle
    (the live half delivers the same plan as signals and control-channel
    rules; see :mod:`repro.live.chaos`).
    """
    from repro.sim.clock import ClockModel
    from repro.sim.engine import Simulator
    from repro.sim.latency import FixedLatencyModel
    from repro.sim.network import Network
    from repro.sim.node import Node

    sim = Simulator(seed=spec.seed)
    network = Network(sim, FixedLatencyModel(latency))
    perfect = ClockModel().perfect()
    stacks = {}
    for node_id in spec.nodes:
        node = Node(sim, network, node_id, clock_model=perfect)
        stacks[node_id] = NodeStack(node, spec)
    # One shared service, deployment-style: it gossips on behalf of every
    # node (all are transport-local in the sim) and routes digests to the
    # receiving stack.
    gossip = GossipService(
        sim, network, config=SCENARIO_GOSSIP,
        membership=lambda object_id: spec.nodes,
        local_digest=lambda nid, obj: stacks[nid].local_gossip_digest(obj),
        on_digest=lambda receiver, digest:
            stacks[receiver].observe_gossip(digest))
    for obj in spec.objects:
        gossip.watch_object(obj)
    for stack in stacks.values():
        stack.gossip = gossip
        stack.schedule()
    if fault_plan is not None:
        from repro.scenarios.plan import (CRASH, HEAL, PARTITION, RECOVER,
                                          RESTORE_LOSS, SET_LOSS)

        fault_plan.validate(spec.nodes)
        loss_stack: List[float] = []

        def _apply_fault(action: Any) -> None:
            if action.kind == CRASH:
                stacks[action.node_id].node.fail()
            elif action.kind == RECOVER:
                stacks[action.node_id].node.recover()
            elif action.kind == PARTITION:
                network.partition(action.groups)
            elif action.kind == HEAL:
                network.heal()
            elif action.kind == SET_LOSS:
                loss_stack.append(network.loss_probability)
                network.set_loss_probability(action.loss_probability)
            elif action.kind == RESTORE_LOSS:
                if loss_stack:
                    network.set_loss_probability(loss_stack.pop())

        for action in fault_plan.actions():
            sim.call_at(action.time, _apply_fault, arg=action,
                        label=f"fault:{action.kind}")
    sim.run(until=spec.duration)
    for stack in stacks.values():
        stack.shutdown()
    return {node_id: stack.outcome() for node_id, stack in stacks.items()}


# --------------------------------------------------------------------------
# live backend helpers
# --------------------------------------------------------------------------

def make_addresses(nodes: List[str], kind: str,
                   rundir: str) -> Dict[str, Address]:
    """Build an address book: UNIX-socket paths under ``rundir``, or
    localhost TCP ports picked by the OS and pinned."""
    if kind == "uds":
        return {n: os.path.join(rundir, f"{n}.sock") for n in nodes}
    import socket
    addresses: Dict[str, Address] = {}
    held = []
    for n in nodes:
        s = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        s.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        s.bind(("127.0.0.1", 0))
        addresses[n] = ("127.0.0.1", s.getsockname()[1])
        held.append(s)
    for s in held:
        s.close()
    return addresses


def build_live_stack(spec: ScenarioSpec, node_id: str,
                     addresses: Dict[str, Address], *,
                     kind: str = "uds",
                     loop: Optional[asyncio.AbstractEventLoop] = None,
                     heartbeat_period: float = 0.0,
                     max_queue_frames: Optional[int] = None
                     ) -> NodeStack:
    """Wire one live node: its own clock (as a real per-process deployment
    would have), transport, endpoint, and protocol stack."""
    clock = LiveClock(seed=spec.seed, loop=loop)
    transport = LiveTransport(clock, addresses, kind=kind,
                              heartbeat_period=heartbeat_period,
                              max_queue_frames=max_queue_frames)
    node = LiveNode(clock, transport, node_id, processing_delay=0.0)
    stack = NodeStack(node, spec)
    # Per-node service: only the local node's digests leave this process
    # (``has_node`` is local-only on a LiveTransport).
    stack.gossip = GossipService(
        clock, transport, config=SCENARIO_GOSSIP,
        membership=lambda object_id: spec.nodes,
        local_digest=lambda nid, obj: (stack.local_gossip_digest(obj)
                                       if nid == node_id else None),
        on_digest=lambda receiver, digest: stack.observe_gossip(digest))
    for obj in spec.objects:
        stack.gossip.watch_object(obj)
    # The simulator registers the receive handler lazily through the shared
    # service; in live mode each process registers its own node's handler.
    node.register_handler("gossip_digest", stack.gossip._handle_digest)
    return stack


async def run_live_stack(stack: NodeStack) -> Dict[str, Any]:
    """Bring one live stack up, run its schedule to completion, tear down."""
    transport = stack.node.transport
    await transport.start()
    stack.node.clock.rebase()  # t=0 now
    stack.schedule()
    await asyncio.sleep(stack.spec.duration)
    stack.shutdown()
    outcome = stack.outcome()
    await transport.stop()
    return outcome


def run_live_scenario_inprocess(spec: ScenarioSpec, rundir: str, *,
                                kind: str = "uds"
                                ) -> Dict[str, Dict[str, Any]]:
    """Run every node of the spec over real sockets on one event loop.

    Each node still gets its own clock and transport (socket servers and
    connections are real); only the process boundary is collapsed.  The
    multiprocess path lives in :mod:`repro.live.deployment`.
    """
    addresses = make_addresses(spec.nodes, kind, rundir)

    async def _run() -> Dict[str, Dict[str, Any]]:
        loop = asyncio.get_running_loop()
        stacks = {node_id: build_live_stack(spec, node_id, addresses,
                                            kind=kind, loop=loop)
                  for node_id in spec.nodes}
        results = await asyncio.gather(
            *(run_live_stack(stack) for stack in stacks.values()))
        return {outcome["node_id"]: outcome for outcome in results}

    return asyncio.run(_run())


# --------------------------------------------------------------------------
# the oracle comparison
# --------------------------------------------------------------------------

#: per-node outcome keys that must match the simulator exactly
ORACLE_KEYS = ("writes_attempted", "writes_applied", "detections_run",
               "final_counts", "folded")


def oracle_diff(sim_outcomes: Dict[str, Dict[str, Any]],
                live_outcomes: Dict[str, Dict[str, Any]]) -> List[str]:
    """Compare protocol outcomes; returns a list of human-readable
    mismatches (empty = conformant)."""
    problems: List[str] = []
    if set(sim_outcomes) != set(live_outcomes):
        return [f"node sets differ: sim={sorted(sim_outcomes)} "
                f"live={sorted(live_outcomes)}"]
    for node_id in sorted(sim_outcomes):
        sim_o, live_o = sim_outcomes[node_id], live_outcomes[node_id]
        for key in ORACLE_KEYS:
            if sim_o[key] != live_o[key]:
                problems.append(f"{node_id}.{key}: sim={sim_o[key]!r} "
                                f"live={live_o[key]!r}")
    sim_res = sorted(tuple(r) for o in sim_outcomes.values()
                     for r in o["resolutions"])
    live_res = sorted(tuple(r) for o in live_outcomes.values()
                      for r in o["resolutions"])
    if sim_res != live_res:
        problems.append(f"resolutions: sim={sim_res!r} live={live_res!r}")
    for label, outcomes in (("sim", sim_outcomes), ("live", live_outcomes)):
        if sum(o["gossip_rounds"] for o in outcomes.values()) == 0:
            problems.append(f"{label}: no gossip rounds ran")
    return problems


#: per-node keys compared on *surviving* nodes under a fault plan; these
#: are pure functions of the schedule and the node's own liveness, so they
#: must match even while peers crash and restart around them
FAULT_ORACLE_KEYS = ("writes_attempted", "writes_applied", "detections_run")


def fault_oracle_diff(sim_outcomes: Dict[str, Dict[str, Any]],
                      live_outcomes: Dict[str, Dict[str, Any]],
                      plan: Any) -> List[str]:
    """Fault-tolerant oracle: compare sim and live runs of the same
    (seed, spec, fault plan); returns human-readable mismatches.

    What it holds equal and what it excuses follows the crash models of the
    two backends.  A sim crash (``fail``/``recover``) keeps replica state
    in memory; a live crash is a SIGKILL'd process whose supervised restart
    comes back with *amnesia*.  So:

    * **survivors** (nodes the plan never crashes) must match exactly on
      writes attempted/applied and detections run — their workload is
      untouched by peers' deaths;
    * **resolutions** are compared as the multiset initiated by survivors
      and observed on survivors;
    * **recovered nodes** must show re-join evidence on the live side (an
      outcome written by a ``--recovering`` incarnation, or a nonzero
      restart count) — their counts are *not* compared, because crash
      timing relative to schedule entries is wall-clock-dependent;
    * **excluded everywhere**: ``final_counts`` and ``folded`` — a
      restarted live node re-enters with an empty store, so merged vectors
      and stability frontiers legitimately diverge from a sim whose
      recovered nodes remember; and all timing-dependent quantities, as in
      the fair-weather oracle.  Both sides must still show nonzero gossip.
    """
    problems: List[str] = []
    crashed = {a.node_id for a in plan.crashes()}
    recovered = {a.node_id for a in plan.recoveries()} & crashed
    survivors = [n for n in sorted(sim_outcomes) if n not in crashed]
    if not survivors:
        return ["fault plan leaves no survivors to compare"]
    for node_id in survivors:
        live_o = live_outcomes.get(node_id)
        if live_o is None:
            problems.append(f"{node_id}: survivor wrote no live outcome")
            continue
        sim_o = sim_outcomes[node_id]
        for key in FAULT_ORACLE_KEYS:
            if sim_o[key] != live_o[key]:
                problems.append(f"{node_id}.{key}: sim={sim_o[key]!r} "
                                f"live={live_o[key]!r}")

    def _survivor_resolutions(outcomes: Dict[str, Dict[str, Any]]) -> list:
        keep = set(survivors)
        return sorted(tuple(r) for n in survivors if n in outcomes
                      for r in outcomes[n]["resolutions"] if r[1] in keep)

    sim_res = _survivor_resolutions(sim_outcomes)
    live_res = _survivor_resolutions(live_outcomes)
    if sim_res != live_res:
        problems.append(f"survivor resolutions: sim={sim_res!r} "
                        f"live={live_res!r}")
    for node_id in sorted(recovered):
        live_o = live_outcomes.get(node_id)
        if live_o is None:
            problems.append(f"{node_id}: recovered node wrote no live outcome")
        elif not (live_o.get("recovering")
                  or live_o.get("restarts", 0) > 0):
            problems.append(f"{node_id}: recovered node shows no restart "
                            f"evidence (recovering flag / restarts)")
    for label, outcomes in (("sim", sim_outcomes), ("live", live_outcomes)):
        if sum(o["gossip_rounds"] for o in outcomes.values()) == 0:
            problems.append(f"{label}: no gossip rounds ran")
    return problems
