"""Live chaos harness: replay a :class:`FaultPlan` against real processes.

:class:`LiveFaultController` schedules an existing
:class:`~repro.scenarios.plan.FaultPlan` — the same pure-data schedule the
sim :class:`~repro.scenarios.injector.FaultInjector` arms on simulated
time — on the **wall clock** of a running
:class:`~repro.live.deployment.LiveDeployment`:

* ``crash``   → a real signal (SIGKILL by default) to the node's process,
  held down so the supervisor honours the plan's downtime window;
* ``recover`` → a supervised respawn with ``--recovering`` (the node
  re-joins mid-timeline with amnesia, as a real crashed replica would);
* ``partition`` / ``heal`` / ``set_loss`` / ``restore_loss`` → per-peer
  drop rules pushed over each node's control socket
  (:mod:`repro.live.control`) and enforced inside ``LiveTransport`` with
  the sim drop-reason taxonomy (``partition`` / ``loss``).

Time base: every node records its rebased clock epoch in
``epoch/<node_id>`` at barrier exit; the controller takes the **max** of
those (the last node to leave the barrier) as its own t=0, so plan times
land on the same timeline the schedules run on — ``time.monotonic`` shares
its origin across processes on one host.  :meth:`tick` is driven from
``LiveDeployment.wait(on_tick=...)`` and applies each half-open window of
due actions exactly once (:meth:`FaultPlan.window`).

Everything applied is recorded in :attr:`timeline` (and dumped by
:meth:`write_timeline` — the CI chaos job uploads it as an artifact), so a
post-mortem can line the chaos schedule up against per-node logs.
"""

from __future__ import annotations

import json
import os
import signal
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.live.control import ControlClient, ControlError
from repro.scenarios.plan import (CRASH, HEAL, PARTITION, RECOVER,
                                  RESTORE_LOSS, SET_LOSS, FaultAction,
                                  FaultPlan)

#: how long after a recovery the controller keeps retrying to re-push the
#: current drop rules to the restarted node's control socket
RULE_SYNC_WINDOW = 10.0


class LiveFaultController:
    """Drives one fault plan against one live deployment, wall-clock."""

    def __init__(self, deployment: Any, plan: FaultPlan, *,
                 crash_signal: int = signal.SIGKILL) -> None:
        plan.validate(deployment.spec.nodes)
        self.deployment = deployment
        self.plan = plan
        self.crash_signal = crash_signal
        self.epoch: Optional[float] = None
        self.applied_until = 0.0
        #: applied-action log: dicts with plan time, wall time, and action
        self.timeline: List[Dict[str, Any]] = []
        #: supervised restarts this controller ordered (plan recoveries)
        self.rejoins = 0
        self._groups: Optional[Sequence[Sequence[str]]] = None
        self._loss = 0.0
        self._loss_stack: List[float] = []
        #: node -> wall deadline for re-pushing rules after its restart
        self._pending_sync: Dict[str, float] = {}

    # ----------------------------------------------------------------- time
    @property
    def now(self) -> Optional[float]:
        """Plan time (seconds since the deployment's barrier), or None
        while the deployment is still coming up."""
        if self.epoch is None:
            return None
        return time.monotonic() - self.epoch

    def _establish_epoch(self) -> bool:
        epochs = []
        for node_id in self.deployment.spec.nodes:
            path = os.path.join(self.deployment.rundir, "epoch", node_id)
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    epochs.append(float(fh.read()))
            except (OSError, ValueError):
                return False  # not every node is past the barrier yet
        # the last node out of the barrier defines t=0, matching the
        # slowest schedule's timeline
        self.epoch = max(epochs)
        return True

    # ----------------------------------------------------------------- tick
    def tick(self) -> None:
        """Apply every plan action that has come due; safe to call often
        (LiveDeployment.wait drives it at its supervision cadence)."""
        if self.epoch is None and not self._establish_epoch():
            return
        t = time.monotonic() - self.epoch
        for action in self.plan.window(self.applied_until, t):
            self._apply(action, t)
        self.applied_until = t
        self._retry_syncs()

    def done(self) -> bool:
        return (self.epoch is not None
                and self.applied_until >= self.plan.end_time()
                and not self._pending_sync)

    # ------------------------------------------------------------- applying
    def _apply(self, action: FaultAction, t: float) -> None:
        record: Dict[str, Any] = {"planned_at": action.time, "applied_at": t,
                                  "action": action.to_dict()}
        if action.kind == CRASH:
            self.deployment.kill_node(action.node_id,
                                      sig=self.crash_signal, hold=True)
        elif action.kind == RECOVER:
            self.deployment.restart_node(action.node_id, recovering=True)
            self.rejoins += 1
            # the restarted node must learn the *current* drop rules; its
            # control socket takes a moment to come up, so retry each tick
            self._pending_sync[action.node_id] = (
                time.monotonic() + RULE_SYNC_WINDOW)
        elif action.kind == PARTITION:
            self._groups = action.groups
            record["pushed"] = self._push_all()
        elif action.kind == HEAL:
            self._groups = None
            record["pushed"] = self._push_all()
        elif action.kind == SET_LOSS:
            self._loss_stack.append(self._loss)
            self._loss = float(action.loss_probability or 0.0)
            record["pushed"] = self._push_all()
        elif action.kind == RESTORE_LOSS:
            if self._loss_stack:
                self._loss = self._loss_stack.pop()
            record["pushed"] = self._push_all()
        else:  # pragma: no cover - plan authoring guards against this
            raise ValueError(f"unknown fault kind {action.kind!r}")
        self.timeline.append(record)

    # ----------------------------------------------------------- drop rules
    def blocked_for(self, node_id: str) -> List[str]:
        """Peers ``node_id`` cannot reach under the active partition.

        Same group semantics as sim ``Network.partition``: nodes not listed
        in any group form one implicit group of their own.
        """
        if not self._groups:
            return []
        groups = [set(g) for g in self._groups]
        listed = set().union(*groups)
        implicit = set(self.deployment.spec.nodes) - listed
        if implicit:
            groups.append(implicit)
        own = next((g for g in groups if node_id in g), implicit)
        return sorted(set(self.deployment.spec.nodes) - own - {node_id})

    def _push_rules(self, node_id: str) -> bool:
        client = ControlClient(self.deployment.control_path(node_id))
        try:
            client.call({"op": "partition",
                         "blocked": self.blocked_for(node_id)})
            client.call({"op": "set_loss", "probability": self._loss})
            return True
        except ControlError:
            return False

    def _push_all(self) -> Dict[str, bool]:
        """Push the current rules to every node that answers; crashed nodes
        get theirs from the post-recovery sync."""
        return {node_id: self._push_rules(node_id)
                for node_id in self.deployment.spec.nodes
                if node_id not in self._pending_sync
                and self.deployment.is_running(node_id)}

    def _retry_syncs(self) -> None:
        now = time.monotonic()
        for node_id, deadline in list(self._pending_sync.items()):
            if self._push_rules(node_id):
                del self._pending_sync[node_id]
                self.timeline.append({"applied_at": self.now,
                                      "action": {"kind": "rules-sync",
                                                 "node_id": node_id}})
            elif now > deadline:
                del self._pending_sync[node_id]
                self.timeline.append({"applied_at": self.now,
                                      "action": {"kind": "rules-sync-failed",
                                                 "node_id": node_id}})

    # -------------------------------------------------------------- reports
    def write_timeline(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump({"plan": self.plan.to_dict(),
                       "rejoins": self.rejoins,
                       "timeline": self.timeline}, fh, indent=2)


# ---------------------------------------------------------------------------
# plan catalog
# ---------------------------------------------------------------------------

def builtin_plan(name: str, nodes: Sequence[str], *,
                 time_scale: float = 1.0) -> FaultPlan:
    """Named plans shaped for the conformance scenario's phase timeline
    (see :func:`~repro.live.scenario.default_scenario`): fault windows are
    placed in the schedule's quiet gaps so survivor outcomes stay pure
    functions of the schedule.

    ``churn`` — the ISSUE's acceptance scenario: one partition window
    during the initial writes (0.9–1.35), then kill 25 % of the nodes
    (2.6) and supervised-restart them (3.35).  Victims are taken from the
    **tail** of the node list so resolution initiators (``nodes[j % n]`` —
    the head) survive, and the crash sits well clear of the demanded
    resolutions (2.0–2.15 plus a few hundred ms of protocol rounds, which
    do *not* scale with ``time_scale``): killing a participant mid-
    resolution aborts it in sim but not necessarily in live, a pure timing
    race the oracle would rightly flag.

    ``kill`` — the crash/restart half of ``churn`` only.

    ``partition`` — the partition window only (no process ever dies).
    """
    ts = time_scale
    nodes = list(nodes)
    half = max(1, len(nodes) // 2)

    def _partition_window() -> FaultPlan:
        plan = FaultPlan()
        plan.partition([nodes[:half], nodes[half:]], at=0.9 * ts)
        plan.heal(at=1.35 * ts)
        return plan

    def _kill_window() -> FaultPlan:
        return FaultPlan.kill_and_recover(
            list(reversed(nodes)), fraction=0.25,
            crash_at=2.6 * ts, recover_at=3.35 * ts, stagger=0.05 * ts)

    if name == "churn":
        return _partition_window().merge(_kill_window())
    if name == "kill":
        return _kill_window()
    if name == "partition":
        return _partition_window()
    raise ValueError(f"unknown builtin fault plan {name!r} "
                     f"(known: churn, kill, partition)")


def resolve_plan(name_or_path: str, nodes: Sequence[str], *,
                 time_scale: float = 1.0) -> FaultPlan:
    """A builtin plan name, or a JSON file of ``FaultPlan.to_dict`` form."""
    if name_or_path.endswith(".json") or os.path.exists(name_or_path):
        with open(name_or_path, "r", encoding="utf-8") as fh:
            return FaultPlan.from_dict(json.load(fh))
    return builtin_plan(name_or_path, nodes, time_scale=time_scale)
