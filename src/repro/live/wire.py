"""Length-prefixed tagged-JSON frame codec for the live backend.

Every payload that crosses ``Transport.send`` in the protocol layers —
version digests, gossip digests, RanSub views, resolution rounds (extended
version vectors, invalidation lists), detection announcements, truncation
counts — must survive a trip through this codec *losslessly*: decode(encode
(x)) == x, including container types (the resolution installer uses
``(writer, seq)`` tuples as dict keys downstream, so tuples must come back
as tuples, not lists).

The format follows the ``repro.shard`` ``WireMessage`` discipline: a frame
is ``struct.pack(">I", len(body))`` followed by a UTF-8 JSON body.  JSON
alone cannot represent tuples, non-string dict keys, or our dataclasses, so
the encoder rewrites them into tagged objects:

* tuple ``(a, b)``            → ``{"__t": [a', b']}``
* dict with non-string keys   → ``{"__d": [[k', v'], ...]}``
  (or with a key starting ``"__"`` that would collide with a tag)
* registered class instance   → ``{"__c": "<name>", "f": [field', ...]}``

Registered classes are exactly the payload value types; each entry names
the fields to pull and a reconstructor.  :class:`ExtendedVersionVector` is
rebuilt through ``_restore_extended`` — the same cache-free content-field
path its ``__reduce__`` uses for shard IPC, so interning/memoisation state
never crosses a process boundary.

Floats round-trip exactly: Python's ``json`` emits ``repr(float)`` (shortest
round-trip form) and parses it back to the identical IEEE-754 double.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Callable, Dict, Tuple

from repro.core.detection import VersionDigest, WriterSummary
from repro.overlay.gossip import GossipDigest
from repro.overlay.ransub import RanSubView
from repro.transport.errors import TransportError
from repro.versioning.extended_vector import (ErrorTriple,
                                              ExtendedVersionVector,
                                              UpdateRecord, WriterBase,
                                              _restore_extended)
from repro.versioning.version_vector import VersionVector

#: frame header: big-endian unsigned 32-bit body length
_HEADER = struct.Struct(">I")

#: refuse frames beyond this size — a corrupt header must not OOM the reader
MAX_FRAME_BYTES = 16 * 1024 * 1024


class WireError(TransportError):
    """A frame or payload could not be encoded/decoded."""


# --------------------------------------------------------------------------
# registered payload classes: name -> (class, field extractor, reconstructor)
# --------------------------------------------------------------------------

def _evv_fields(v: ExtendedVersionVector) -> Tuple[Any, ...]:
    # The five content fields of __reduce__; caches are process-local.
    return (v._updates, v._base, v._metadata, v._last_consistent_time,
            v._triple)


_REGISTRY: Dict[str, Tuple[type, Callable[[Any], Tuple[Any, ...]],
                           Callable[..., Any]]] = {
    "ErrorTriple": (
        ErrorTriple,
        lambda v: (v.numerical, v.order, v.staleness),
        ErrorTriple),
    "UpdateRecord": (
        UpdateRecord,
        lambda v: (v.writer, v.seq, v.timestamp, v.metadata_delta, v.payload),
        UpdateRecord),
    "WriterBase": (
        WriterBase,
        lambda v: (v.count, v.cum_metadata, v.last_timestamp),
        WriterBase),
    "VersionVector": (
        VersionVector,
        lambda v: (v.as_dict(),),
        lambda counts: VersionVector._from_trusted(counts)),
    "ExtendedVersionVector": (
        ExtendedVersionVector, _evv_fields, _restore_extended),
    "WriterSummary": (
        WriterSummary,
        lambda v: (v.count, v.cumulative_metadata, v.last_timestamp),
        WriterSummary),
    "VersionDigest": (
        VersionDigest,
        lambda v: (v.object_id, v.node_id, v.issued_at, v.writers,
                   v.metadata, v.last_consistent_time),
        VersionDigest),
    "GossipDigest": (
        GossipDigest,
        lambda v: (v.object_id, v.origin, v.counts, v.metadata,
                   v.last_consistent_time, v.issued_at, v.ttl),
        GossipDigest),
    "RanSubView": (
        RanSubView,
        lambda v: (v.round_number, v.members, v.received_at),
        RanSubView),
}

#: exact-type lookup for the encoder (subclasses are not payload types)
_BY_TYPE: Dict[type, str] = {cls: name for name, (cls, _, _) in
                             _REGISTRY.items()}


# --------------------------------------------------------------------------
# value <-> jsonable
# --------------------------------------------------------------------------

def _to_jsonable(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    name = _BY_TYPE.get(type(value))
    if name is not None:
        _, extract, _ = _REGISTRY[name]
        return {"__c": name, "f": [_to_jsonable(f) for f in extract(value)]}
    if isinstance(value, tuple):
        return {"__t": [_to_jsonable(v) for v in value]}
    if isinstance(value, list):
        return [_to_jsonable(v) for v in value]
    if isinstance(value, dict):
        if all(isinstance(k, str) and not k.startswith("__") for k in value):
            return {k: _to_jsonable(v) for k, v in value.items()}
        return {"__d": [[_to_jsonable(k), _to_jsonable(v)]
                        for k, v in value.items()]}
    raise WireError(f"cannot encode {type(value).__name__} for the wire")


def _from_jsonable(value: Any) -> Any:
    if isinstance(value, list):
        return [_from_jsonable(v) for v in value]
    if isinstance(value, dict):
        if "__c" in value:
            name = value["__c"]
            entry = _REGISTRY.get(name)
            if entry is None:
                raise WireError(f"unknown wire class {name!r}")
            _, _, rebuild = entry
            return rebuild(*[_from_jsonable(f) for f in value["f"]])
        if "__t" in value:
            return tuple(_from_jsonable(v) for v in value["__t"])
        if "__d" in value:
            return {_make_key(_from_jsonable(k)): _from_jsonable(v)
                    for k, v in value["__d"]}
        return {k: _from_jsonable(v) for k, v in value.items()}
    return value


def _make_key(key: Any) -> Any:
    # Lists decoded inside a __d key position must be hashable again.
    return tuple(key) if isinstance(key, list) else key


# --------------------------------------------------------------------------
# envelope <-> frame bytes
# --------------------------------------------------------------------------

def encode_envelope(src: str, dst: str, protocol: str, msg_type: str,
                    payload: Any, size_bytes: int, sent_at: float) -> bytes:
    """Encode one message envelope into a length-prefixed frame."""
    body = json.dumps(
        [src, dst, protocol, msg_type, _to_jsonable(payload), size_bytes,
         sent_at],
        separators=(",", ":"), allow_nan=False).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise WireError(f"frame body {len(body)} bytes exceeds "
                        f"{MAX_FRAME_BYTES}")
    return _HEADER.pack(len(body)) + body


def decode_envelope(body: bytes) -> Tuple[str, str, str, str, Any, int, float]:
    """Decode a frame body back into ``(src, dst, protocol, msg_type,
    payload, size_bytes, sent_at)``."""
    try:
        fields = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"malformed frame body: {exc}") from exc
    if not isinstance(fields, list) or len(fields) != 7:
        raise WireError("frame body is not a 7-field envelope")
    src, dst, protocol, msg_type, payload, size_bytes, sent_at = fields
    return (src, dst, protocol, msg_type, _from_jsonable(payload),
            size_bytes, sent_at)


def roundtrip(value: Any) -> Any:
    """Encode then decode a payload value (test helper)."""
    frame = encode_envelope("a", "b", "p", "t", value, 0, 0.0)
    return decode_envelope(frame[_HEADER.size:])[4]


# --------------------------------------------------------------------------
# async stream helpers
# --------------------------------------------------------------------------

async def read_frame(reader: asyncio.StreamReader) -> bytes:
    """Read one frame body from ``reader``; raises ``IncompleteReadError``
    at clean EOF between frames."""
    header = await reader.readexactly(_HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise WireError(f"incoming frame claims {length} bytes")
    return await reader.readexactly(length)


def write_frame(writer: asyncio.StreamWriter, frame: bytes) -> None:
    writer.write(frame)
