"""CLI: boot a live deployment on localhost and check it against the oracle.

``python -m repro.live --nodes 8 --transport uds --duration 5 --seed 7``

Spawns one process per node running the seeded conformance workload,
collects per-node protocol outcomes, prints an activity summary, and — by
default — runs the same scenario on the simulator and compares (the
simulator is the oracle; ``--no-oracle`` skips that step, e.g. for quick
bring-up checks).

Exit codes: 0 success, 1 deployment failure or oracle mismatch.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile

from repro.live.deployment import DeploymentError, LiveDeployment
from repro.live.scenario import default_scenario, oracle_diff, \
    run_sim_scenario


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.live",
        description="Run a live multiprocess IDEA deployment on localhost.")
    parser.add_argument("--nodes", type=int, default=8,
                        help="number of node processes (default 8)")
    parser.add_argument("--objects", type=int, default=2,
                        help="number of replicated objects (default 2)")
    parser.add_argument("--transport", choices=("uds", "tcp"), default="uds",
                        help="socket flavour (default uds)")
    parser.add_argument("--duration", type=float, default=5.0,
                        help="approximate workload duration in seconds; the "
                             "schedule is scaled to fit (default 5)")
    parser.add_argument("--seed", type=int, default=7,
                        help="deterministic workload seed (default 7)")
    parser.add_argument("--rundir", default=None,
                        help="run directory for sockets/logs/outcomes "
                             "(default: a fresh temp dir)")
    parser.add_argument("--no-oracle", action="store_true",
                        help="skip the simulator-oracle comparison")
    parser.add_argument("--json", action="store_true",
                        help="print the full outcome document as JSON")
    args = parser.parse_args(argv)

    # default_scenario spans 4.4 time units; scale to the requested duration
    spec = default_scenario(args.nodes, args.objects, seed=args.seed,
                            time_scale=args.duration / 4.4)
    rundir = args.rundir or tempfile.mkdtemp(prefix="repro-live-")
    os.makedirs(rundir, exist_ok=True)

    deployment = LiveDeployment(spec, rundir, kind=args.transport)
    try:
        live = deployment.run()
    except DeploymentError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        print(f"logs: {os.path.join(rundir, 'log')}", file=sys.stderr)
        return 1

    writes = sum(sum(o["writes_applied"].values()) for o in live.values())
    gossip = sum(o["gossip_rounds"] for o in live.values())
    resolutions = sum(len(o["resolutions"]) for o in live.values())
    folded = sum(sum(o["folded"].values()) for o in live.values())
    print(f"live deployment: {len(live)} nodes over {args.transport}, "
          f"rundir {rundir}")
    print(f"  writes applied:        {writes}")
    print(f"  gossip rounds:         {gossip}")
    print(f"  resolutions completed: {resolutions}")
    print(f"  log entries folded:    {folded}")

    problems = []
    if writes == 0:
        problems.append("no writes were applied")
    if gossip == 0:
        problems.append("no gossip rounds ran")
    if resolutions == 0:
        problems.append("no resolution completed")

    if not args.no_oracle:
        sim = run_sim_scenario(spec)
        problems.extend(oracle_diff(sim, live))
        if not problems:
            print("  oracle: live outcomes match the simulator")

    if args.json:
        print(json.dumps(live, indent=2, sort_keys=True))

    if problems:
        for problem in problems:
            print(f"MISMATCH: {problem}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
