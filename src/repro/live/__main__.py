"""CLI: boot a live deployment on localhost and check it against the oracle.

``python -m repro.live --nodes 8 --transport uds --duration 5 --seed 7``

Spawns one process per node running the seeded conformance workload,
collects per-node protocol outcomes, prints an activity summary, and — by
default — runs the same scenario on the simulator and compares (the
simulator is the oracle; ``--no-oracle`` skips that step, e.g. for quick
bring-up checks).

``--fault-plan NAME|PATH`` turns the run into a chaos run: the plan (a
builtin like ``churn``, or a ``FaultPlan.to_dict`` JSON file) is replayed
against the real processes — SIGKILLs, supervised restarts, control-channel
partitions — while the same plan runs on the simulator, and the
fault-tolerant oracle compares survivor counts and recovery evidence
(DESIGN.md §15).  A plan with crashes also asserts nonzero transport
reconnects, the chaos CI job's signal that re-dialing actually happened.
The applied chaos timeline lands in ``<rundir>/chaos_timeline.json``.

Exit codes: 0 success, 1 deployment failure or oracle mismatch.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile

from repro.live.chaos import LiveFaultController, resolve_plan
from repro.live.deployment import (DeploymentError, LiveDeployment,
                                   RestartPolicy)
from repro.live.scenario import (default_scenario, fault_oracle_diff,
                                 oracle_diff, run_sim_scenario)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.live",
        description="Run a live multiprocess IDEA deployment on localhost.")
    parser.add_argument("--nodes", type=int, default=8,
                        help="number of node processes (default 8)")
    parser.add_argument("--objects", type=int, default=2,
                        help="number of replicated objects (default 2)")
    parser.add_argument("--transport", choices=("uds", "tcp"), default="uds",
                        help="socket flavour (default uds)")
    parser.add_argument("--duration", type=float, default=5.0,
                        help="approximate workload duration in seconds; the "
                             "schedule is scaled to fit (default 5)")
    parser.add_argument("--seed", type=int, default=7,
                        help="deterministic workload seed (default 7)")
    parser.add_argument("--rundir", default=None,
                        help="run directory for sockets/logs/outcomes "
                             "(default: a fresh temp dir)")
    parser.add_argument("--fault-plan", default=None, metavar="NAME|PATH",
                        help="replay this FaultPlan against the deployment "
                             "(builtin: churn, kill, partition; or a JSON "
                             "file); implies supervision")
    parser.add_argument("--supervise", action="store_true",
                        help="restart nodes that crash unexpectedly "
                             "(automatic when --fault-plan is given)")
    parser.add_argument("--restart-budget", type=int, default=2,
                        help="supervised restarts allowed per node "
                             "(default 2)")
    parser.add_argument("--no-oracle", action="store_true",
                        help="skip the simulator-oracle comparison")
    parser.add_argument("--json", action="store_true",
                        help="print the full outcome document as JSON")
    args = parser.parse_args(argv)

    # default_scenario spans 4.4 time units; scale to the requested duration
    time_scale = args.duration / 4.4
    spec = default_scenario(args.nodes, args.objects, seed=args.seed,
                            time_scale=time_scale)
    rundir = args.rundir or tempfile.mkdtemp(prefix="repro-live-")
    os.makedirs(rundir, exist_ok=True)

    plan = None
    if args.fault_plan is not None:
        plan = resolve_plan(args.fault_plan, spec.nodes,
                            time_scale=time_scale)
    policy = (RestartPolicy(max_restarts=args.restart_budget)
              if (args.supervise or plan is not None) else None)
    deployment = LiveDeployment(spec, rundir, kind=args.transport,
                                restart_policy=policy)
    controller = (LiveFaultController(deployment, plan)
                  if plan is not None else None)
    try:
        deployment.start()
        live = deployment.wait(
            on_tick=controller.tick if controller is not None else None,
            require_all_outcomes=plan is None)
    except DeploymentError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        print(f"logs: {os.path.join(rundir, 'log')}", file=sys.stderr)
        return 1
    finally:
        deployment.terminate()
        if controller is not None:
            controller.write_timeline(
                os.path.join(rundir, "chaos_timeline.json"))

    writes = sum(sum(o["writes_applied"].values()) for o in live.values())
    gossip = sum(o["gossip_rounds"] for o in live.values())
    resolutions = sum(len(o["resolutions"]) for o in live.values())
    folded = sum(sum(o["folded"].values()) for o in live.values())
    reconnects = sum(o.get("reconnects", 0) for o in live.values())
    restarts = sum(o.get("restarts", 0) for o in live.values())
    print(f"live deployment: {len(live)} nodes over {args.transport}, "
          f"rundir {rundir}")
    print(f"  writes applied:        {writes}")
    print(f"  gossip rounds:         {gossip}")
    print(f"  resolutions completed: {resolutions}")
    print(f"  log entries folded:    {folded}")
    if plan is not None or args.supervise:
        print(f"  reconnects:            {reconnects}")
        print(f"  restarts:              {restarts}")
    if controller is not None:
        print(f"  chaos: {len(controller.timeline)} actions applied, "
              f"{controller.rejoins} supervised re-joins "
              f"(timeline: {os.path.join(rundir, 'chaos_timeline.json')})")

    problems = []
    if writes == 0:
        problems.append("no writes were applied")
    if gossip == 0:
        problems.append("no gossip rounds ran")
    if resolutions == 0:
        problems.append("no resolution completed")
    if plan is not None and plan.crashes():
        if reconnects == 0:
            problems.append("fault plan crashed nodes but no transport "
                            "reconnects happened")
        if controller is not None and controller.rejoins < len(
                {a.node_id for a in plan.recoveries()}):
            problems.append("not every planned recovery was applied")

    if not args.no_oracle:
        sim = run_sim_scenario(spec, fault_plan=plan)
        if plan is None:
            problems.extend(oracle_diff(sim, live))
        else:
            problems.extend(fault_oracle_diff(sim, live, plan))
        if not problems:
            label = ("fault-tolerant oracle" if plan is not None
                     else "oracle")
            print(f"  {label}: live outcomes match the simulator")

    if args.json:
        print(json.dumps(live, indent=2, sort_keys=True))

    if problems:
        for problem in problems:
            print(f"MISMATCH: {problem}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
