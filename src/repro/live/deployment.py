"""Multiprocess live deployment: bring-up, barrier, run, collect, teardown.

:class:`LiveDeployment` boots one OS process per node (``python -m
repro.live.node_main <spec.json> <node_id>``), each running the per-node
stack from :mod:`repro.live.scenario` over UNIX sockets or localhost TCP.

Bring-up protocol: the parent writes ``spec.json`` (scenario + address book
+ run directory) and spawns the children; each child binds its listening
socket, touches ``ready/<node_id>``, then polls until *every* ready file
exists; only then does it rebase its clock to t=0 and start the scenario
schedule, so all nodes enter the workload within the barrier's polling
jitter.  On completion each child writes ``out/<node_id>.json`` with its
protocol outcomes and exits 0.

The parent waits (with a hard deadline), collects the outcome files, and
tears everything down — surviving children get SIGTERM, then SIGKILL.
Per-node stdout/stderr land in ``log/<node_id>.log`` for post-mortems (the
CI smoke job uploads them as artifacts).
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from typing import Any, Dict, List, Optional

from repro.live.scenario import ScenarioSpec, make_addresses
from repro.transport.errors import TransportError


class DeploymentError(TransportError):
    """A live deployment failed to come up, run, or report outcomes."""


class LiveDeployment:
    """Runs a :class:`ScenarioSpec` as one process per node on localhost."""

    def __init__(self, spec: ScenarioSpec, rundir: str, *,
                 kind: str = "uds") -> None:
        if kind not in ("uds", "tcp"):
            raise DeploymentError(f"unknown transport kind {kind!r}")
        self.spec = spec
        self.rundir = os.path.abspath(rundir)
        self.kind = kind
        self.addresses = None
        self._procs: Dict[str, subprocess.Popen] = {}
        self._logs: List[Any] = []

    # ------------------------------------------------------------ file layout
    @property
    def spec_path(self) -> str:
        return os.path.join(self.rundir, "spec.json")

    def ready_path(self, node_id: str) -> str:
        return os.path.join(self.rundir, "ready", node_id)

    def out_path(self, node_id: str) -> str:
        return os.path.join(self.rundir, "out", f"{node_id}.json")

    def log_path(self, node_id: str) -> str:
        return os.path.join(self.rundir, "log", f"{node_id}.log")

    # --------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Write the spec and spawn one node process per node id."""
        for sub in ("ready", "out", "log"):
            os.makedirs(os.path.join(self.rundir, sub), exist_ok=True)
        self.addresses = make_addresses(self.spec.nodes, self.kind,
                                        self.rundir)
        document = {
            "spec": self.spec.to_dict(),
            "kind": self.kind,
            "rundir": self.rundir,
            "addresses": {n: list(a) if isinstance(a, tuple) else a
                          for n, a in self.addresses.items()},
        }
        with open(self.spec_path, "w", encoding="utf-8") as fh:
            json.dump(document, fh, indent=2)
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (src_root if not existing
                             else src_root + os.pathsep + existing)
        for node_id in self.spec.nodes:
            log = open(self.log_path(node_id), "w", encoding="utf-8")
            self._logs.append(log)
            self._procs[node_id] = subprocess.Popen(
                [sys.executable, "-m", "repro.live.node_main",
                 self.spec_path, node_id],
                stdout=log, stderr=subprocess.STDOUT, env=env)

    def wait(self, *, grace: float = 30.0) -> Dict[str, Dict[str, Any]]:
        """Wait for every node to exit and return the per-node outcomes.

        The deadline is the scenario duration plus barrier/teardown grace;
        a node that misses it (or exits nonzero) fails the deployment with
        its log tail in the error message.
        """
        deadline = time.monotonic() + self.spec.duration + grace
        failures = []
        for node_id, proc in self._procs.items():
            remaining = max(0.1, deadline - time.monotonic())
            try:
                code = proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                failures.append(f"{node_id}: still running at deadline")
                continue
            if code != 0:
                failures.append(
                    f"{node_id}: exit {code}\n{self._log_tail(node_id)}")
        if failures:
            self.terminate()
            raise DeploymentError("live deployment failed:\n"
                                  + "\n".join(failures))
        outcomes = {}
        for node_id in self.spec.nodes:
            path = self.out_path(node_id)
            if not os.path.exists(path):
                raise DeploymentError(f"{node_id} exited 0 without writing "
                                      f"{path}")
            with open(path, "r", encoding="utf-8") as fh:
                outcomes[node_id] = json.load(fh)
        return outcomes

    def run(self, *, grace: float = 30.0) -> Dict[str, Dict[str, Any]]:
        """start() + wait() + teardown, returning the collected outcomes."""
        self.start()
        try:
            return self.wait(grace=grace)
        finally:
            self.terminate()

    def terminate(self) -> None:
        """Stop any still-running node processes (TERM, then KILL)."""
        for proc in self._procs.values():
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
        deadline = time.monotonic() + 5.0
        for proc in self._procs.values():
            remaining = max(0.1, deadline - time.monotonic())
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        for log in self._logs:
            try:
                log.close()
            except OSError:
                pass
        self._logs.clear()

    def _log_tail(self, node_id: str, lines: int = 20) -> str:
        try:
            with open(self.log_path(node_id), "r", encoding="utf-8") as fh:
                return "".join(fh.readlines()[-lines:])
        except OSError:
            return "<no log>"
