"""Multiprocess live deployment: bring-up, barrier, supervision, teardown.

:class:`LiveDeployment` boots one OS process per node (``python -m
repro.live.node_main <spec.json> <node_id>``), each running the per-node
stack from :mod:`repro.live.scenario` over UNIX sockets or localhost TCP.

Bring-up protocol: the parent writes ``spec.json`` (scenario + address book
+ run directory) and spawns the children; each child binds its listening
socket, touches ``ready/<node_id>``, then polls until *every* ready file
exists; only then does it rebase its clock to t=0, record the epoch in
``epoch/<node_id>``, and start the scenario schedule — so all nodes enter
the workload within the barrier's polling jitter.  On completion each child
writes ``out/<node_id>.json`` with its protocol outcomes and exits 0.

The parent is also a **supervisor**: :meth:`poll` reaps exits as they
happen and records each node's full exit history (``exit 0`` / ``SIGKILL``
/ ...).  With an opt-in :class:`RestartPolicy`, a node that dies with a
nonzero status is respawned with ``--recovering`` after a capped jittered
backoff, up to a restart budget; the recovering incarnation re-touches its
ready file, rebases onto the *original* epoch and resumes the schedule
mid-timeline.  The chaos controller (:mod:`repro.live.chaos`) drives the
same machinery explicitly — :meth:`kill_node` holds a node down (no auto
restart) until a plan recovery calls :meth:`restart_node`.

:meth:`wait` returns the per-node outcomes annotated with exit history and
restart counts; :meth:`report` always has a per-node entry with the exit
status (code or signal name) and, for anything that last exited nonzero,
a log tail.  :meth:`terminate` is idempotent.  Per-node stdout/stderr land
in ``log/<node_id>.log`` for post-mortems (the CI jobs upload them).
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
import zlib
from collections import Counter
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Set

from repro.live.backoff import BackoffPolicy
from repro.live.control import control_address
from repro.live.scenario import ScenarioSpec, make_addresses
from repro.transport.errors import TransportError

import numpy as np


class DeploymentError(TransportError):
    """A live deployment failed to come up, run, or report outcomes."""


def describe_exit(returncode: int) -> str:
    """Human-readable exit status: ``exit N`` or the killing signal name."""
    if returncode >= 0:
        return f"exit {returncode}"
    try:
        return signal.Signals(-returncode).name
    except ValueError:
        return f"signal {-returncode}"


@dataclass(frozen=True)
class RestartPolicy:
    """Opt-in supervision: how often and how fast crashed nodes respawn.

    ``max_restarts`` is a *per-node* budget for supervisor-initiated
    restarts; chaos-driven restarts (:meth:`LiveDeployment.restart_node`)
    do not consume it — a plan recovery is an order, not a courtesy.
    """

    max_restarts: int = 2
    backoff: BackoffPolicy = BackoffPolicy(base=0.2, cap=5.0,
                                           multiplier=2.0, jitter=0.3,
                                           max_elapsed=None)
    seed: int = 0


class LiveDeployment:
    """Runs a :class:`ScenarioSpec` as one process per node on localhost."""

    def __init__(self, spec: ScenarioSpec, rundir: str, *,
                 kind: str = "uds",
                 restart_policy: Optional[RestartPolicy] = None,
                 heartbeat_period: float = 0.25) -> None:
        if kind not in ("uds", "tcp"):
            raise DeploymentError(f"unknown transport kind {kind!r}")
        self.spec = spec
        self.rundir = os.path.abspath(rundir)
        self.kind = kind
        self.restart_policy = restart_policy
        self.heartbeat_period = float(heartbeat_period)
        self.addresses = None
        self._procs: Dict[str, subprocess.Popen] = {}
        self._logs: List[Any] = []
        self._env: Optional[Dict[str, str]] = None
        # --- supervision state ---
        self._exits: Dict[str, List[str]] = {n: [] for n in spec.nodes}
        self._restarts: Counter = Counter()
        self._reaped: Set[str] = set()      # current proc's exit recorded
        self._done: Set[str] = set()        # exited 0
        self._failed: Dict[str, str] = {}   # terminal nonzero exit
        self._held: Set[str] = set()        # chaos holds these down
        self._pending_restart: Dict[str, float] = {}  # node -> due time
        self._backoffs: Dict[str, Iterator[float]] = {}
        self._terminated = False

    # ------------------------------------------------------------ file layout
    @property
    def spec_path(self) -> str:
        return os.path.join(self.rundir, "spec.json")

    def ready_path(self, node_id: str) -> str:
        return os.path.join(self.rundir, "ready", node_id)

    def out_path(self, node_id: str) -> str:
        return os.path.join(self.rundir, "out", f"{node_id}.json")

    def log_path(self, node_id: str) -> str:
        return os.path.join(self.rundir, "log", f"{node_id}.log")

    def control_path(self, node_id: str) -> str:
        return control_address(self.rundir, node_id)

    # --------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Write the spec and spawn one node process per node id."""
        for sub in ("ready", "out", "log", "ctl", "epoch"):
            os.makedirs(os.path.join(self.rundir, sub), exist_ok=True)
        self.addresses = make_addresses(self.spec.nodes, self.kind,
                                        self.rundir)
        document = {
            "spec": self.spec.to_dict(),
            "kind": self.kind,
            "rundir": self.rundir,
            "addresses": {n: list(a) if isinstance(a, tuple) else a
                          for n, a in self.addresses.items()},
            "control": {n: self.control_path(n) for n in self.spec.nodes},
            "heartbeat_period": self.heartbeat_period,
        }
        with open(self.spec_path, "w", encoding="utf-8") as fh:
            json.dump(document, fh, indent=2)
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (src_root if not existing
                             else src_root + os.pathsep + existing)
        self._env = env
        for node_id in self.spec.nodes:
            self._spawn(node_id)

    def _spawn(self, node_id: str, *, recovering: bool = False) -> None:
        args = [sys.executable, "-m", "repro.live.node_main",
                self.spec_path, node_id]
        if recovering:
            args.append("--recovering")
        # append on restart so one log file tells the node's whole story
        log = open(self.log_path(node_id), "a" if recovering else "w",
                   encoding="utf-8")
        self._logs.append(log)
        self._reaped.discard(node_id)
        self._procs[node_id] = subprocess.Popen(
            args, stdout=log, stderr=subprocess.STDOUT, env=self._env)

    # ------------------------------------------------------------- supervision
    def poll(self) -> None:
        """Reap exits, record statuses, launch due restarts.  Idempotent and
        cheap; :meth:`wait` calls it in a loop, chaos controllers call it
        from their tick."""
        if self._terminated:
            return
        now = time.monotonic()
        for node_id, due in list(self._pending_restart.items()):
            if due <= now:
                del self._pending_restart[node_id]
                self._spawn(node_id, recovering=True)
        for node_id, proc in list(self._procs.items()):
            if node_id in self._reaped:
                continue
            returncode = proc.poll()
            if returncode is None:
                continue
            self._reaped.add(node_id)
            status = describe_exit(returncode)
            self._exits[node_id].append(status)
            if returncode == 0:
                self._done.add(node_id)
            elif node_id in self._held:
                pass  # chaos killed it; a plan recovery restarts it
            elif (self.restart_policy is not None
                  and self._restarts[node_id]
                  < self.restart_policy.max_restarts):
                self._restarts[node_id] += 1
                delay = next(self._node_backoff(node_id))
                self._pending_restart[node_id] = now + delay
            else:
                self._failed[node_id] = status

    def _node_backoff(self, node_id: str) -> Iterator[float]:
        assert self.restart_policy is not None
        delays = self._backoffs.get(node_id)
        if delays is None:
            # per-node seeded jitter: deterministic given (policy seed, node)
            rng = np.random.default_rng(
                (self.restart_policy.seed,
                 zlib.crc32(node_id.encode("utf-8"))))
            delays = self.restart_policy.backoff.delays(rng)
            self._backoffs[node_id] = delays
        return delays

    def kill_node(self, node_id: str, *,
                  sig: int = signal.SIGKILL, hold: bool = True) -> None:
        """Deliver a crash to a real process (the chaos CRASH action).

        ``hold=True`` pins the node down — the supervisor will not restart
        it until :meth:`restart_node` — so a plan's downtime window is
        honoured even when a restart policy is active.
        """
        if node_id not in self._procs:
            raise DeploymentError(f"unknown node {node_id!r}")
        if hold:
            self._held.add(node_id)
        self._pending_restart.pop(node_id, None)
        proc = self._procs[node_id]
        if proc.poll() is None:
            proc.send_signal(sig)

    def restart_node(self, node_id: str, *, recovering: bool = True) -> None:
        """Respawn a (held or crashed) node now (the chaos RECOVER action)."""
        if node_id not in self._procs:
            raise DeploymentError(f"unknown node {node_id!r}")
        self.poll()  # make sure the previous incarnation's exit is recorded
        self._held.discard(node_id)
        self._failed.pop(node_id, None)
        self._pending_restart.pop(node_id, None)
        if self._procs[node_id].poll() is None:
            return  # still running; nothing to do
        self._restarts[node_id] += 1
        self._spawn(node_id, recovering=recovering)

    def restarts(self, node_id: str) -> int:
        return self._restarts[node_id]

    def is_running(self, node_id: str) -> bool:
        proc = self._procs.get(node_id)
        return proc is not None and proc.poll() is None

    def _settled(self, node_id: str) -> bool:
        if node_id in self._done or node_id in self._failed:
            return True
        if node_id in self._pending_restart:
            return False
        # a held node whose process is dead stays down by design
        return (node_id in self._held
                and self._procs[node_id].poll() is not None)

    # ------------------------------------------------------------------ wait
    def wait(self, *, grace: float = 30.0,
             on_tick: Optional[Callable[[], None]] = None,
             require_all_outcomes: bool = True) -> Dict[str, Dict[str, Any]]:
        """Supervise until every node settles; return per-node outcomes.

        The deadline is the scenario duration plus barrier/teardown grace.
        ``on_tick`` runs every supervision poll (~50 Hz) — the chaos
        controller's entry point.  A node that misses the deadline, or
        exits nonzero with no restart budget left, fails the deployment
        with its log tail in the error message.  With
        ``require_all_outcomes=False`` (chaos runs where a plan may leave
        nodes dead), nodes without an outcome file are simply absent from
        the result instead of failing the run.
        """
        deadline = time.monotonic() + self.spec.duration + grace
        while True:
            self.poll()
            if on_tick is not None:
                on_tick()
            if all(self._settled(n) for n in self.spec.nodes):
                break
            if time.monotonic() > deadline:
                for node_id in self.spec.nodes:
                    if not self._settled(node_id):
                        self._failed.setdefault(
                            node_id, "still running at deadline")
                break
            time.sleep(0.02)
        if self._failed:
            failures = [f"{n}: {status}\n{self._log_tail(n)}"
                        for n, status in sorted(self._failed.items())]
            self.terminate()
            raise DeploymentError("live deployment failed:\n"
                                  + "\n".join(failures))
        outcomes = {}
        for node_id in self.spec.nodes:
            path = self.out_path(node_id)
            if not os.path.exists(path):
                if require_all_outcomes:
                    raise DeploymentError(
                        f"{node_id} exited 0 without writing {path}")
                continue  # stayed dead under the fault plan
            with open(path, "r", encoding="utf-8") as fh:
                outcome = json.load(fh)
            outcome["exit_status"] = list(self._exits[node_id])
            outcome["restarts"] = self._restarts[node_id]
            outcomes[node_id] = outcome
        return outcomes

    def run(self, *, grace: float = 30.0) -> Dict[str, Dict[str, Any]]:
        """start() + wait() + teardown, returning the collected outcomes."""
        self.start()
        try:
            return self.wait(grace=grace)
        finally:
            self.terminate()

    # ---------------------------------------------------------------- report
    def report(self) -> Dict[str, Dict[str, Any]]:
        """Always-available per-node status: exit history (code or signal
        name), restart count, current state, and a log tail for any node
        whose last exit was nonzero."""
        self.poll()
        report: Dict[str, Dict[str, Any]] = {}
        for node_id in self.spec.nodes:
            proc = self._procs.get(node_id)
            if node_id in self._failed:
                state = "failed"
            elif node_id in self._done:
                state = "done"
            elif node_id in self._pending_restart:
                state = "restart-pending"
            elif node_id in self._held and (proc is None
                                            or proc.poll() is not None):
                state = "held-down"
            elif proc is not None and proc.poll() is None:
                state = "running"
            else:
                state = "exited"
            exits = list(self._exits[node_id])
            entry: Dict[str, Any] = {
                "exits": exits,
                "exit_status": exits[-1] if exits else None,
                "restarts": self._restarts[node_id],
                "state": state,
            }
            if exits and exits[-1] != "exit 0":
                entry["log_tail"] = self._log_tail(node_id)
            report[node_id] = entry
        return report

    # ------------------------------------------------------------- teardown
    def terminate(self) -> None:
        """Stop any still-running node processes (TERM, then KILL).

        Idempotent: safe to call from ``finally`` blocks after an explicit
        call, and it cancels pending restarts so nothing respawns under a
        teardown.
        """
        self._terminated = True
        self._pending_restart.clear()
        for proc in self._procs.values():
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
        deadline = time.monotonic() + 5.0
        for proc in self._procs.values():
            remaining = max(0.1, deadline - time.monotonic())
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        # record the final exits ourselves — poll() is a no-op once
        # terminated, but report() must still show every node's last status
        for node_id, proc in self._procs.items():
            if node_id not in self._reaped and proc.poll() is not None:
                self._reaped.add(node_id)
                self._exits[node_id].append(describe_exit(proc.returncode))
        for log in self._logs:
            try:
                log.close()
            except OSError:
                pass
        self._logs.clear()

    def _log_tail(self, node_id: str, lines: int = 20) -> str:
        try:
            with open(self.log_path(node_id), "r", encoding="utf-8") as fh:
                return "".join(fh.readlines()[-lines:])
        except OSError:
            return "<no log>"
