"""Live protocol endpoint.

The whole point of the transport seam is that nothing is needed here: a
live node *is* a :class:`~repro.transport.endpoint.ProtocolEndpoint` wired
to a :class:`~repro.live.clock.LiveClock` and a
:class:`~repro.live.transport.LiveTransport`.  Its ``local_time`` is the
wall clock — real deployments get real clock skew instead of the
simulator's :class:`~repro.sim.clock.DriftingClock` model.
"""

from __future__ import annotations

from typing import Optional

from repro.live.clock import LiveClock
from repro.live.transport import LiveTransport
from repro.transport.endpoint import ProtocolEndpoint


class LiveNode(ProtocolEndpoint):
    """A protocol endpoint running on wall-clock time over sockets."""

    def __init__(self, clock: LiveClock, transport: LiveTransport,
                 node_id: str, *,
                 processing_delay: Optional[float] = None) -> None:
        super().__init__(clock, transport, node_id,
                         processing_delay=processing_delay)
