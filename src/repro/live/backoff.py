"""Capped, jittered exponential backoff for live-mode retries.

One :class:`BackoffPolicy` value describes a whole retry discipline — first
delay, growth factor, cap, jitter fraction, and an optional give-up window —
and :meth:`BackoffPolicy.delays` turns it into a deterministic delay stream
given a seeded RNG.  The live transport uses two policies:

* **connect** — a sender's *first* connection to a peer.  Deployments start
  all processes concurrently, so early sends must tolerate peers whose
  listening socket is not up yet; the policy keeps the old 10 s give-up
  window (``max_elapsed``) but replaces the fixed 50 ms poll loop with
  jittered exponential delays, so a hundred senders hammering one slow peer
  de-synchronise instead of thundering in lockstep.
* **reconnect** — an *established* connection dropped (peer crashed, was
  SIGKILL'd by the chaos controller, restarted...).  ``max_elapsed=None``:
  the sender keeps trying forever at the capped cadence, because a
  supervised restart may bring the peer back at any time.  Undeliverable
  frames meanwhile become counted drops, never unbounded memory (the
  per-peer queue is bounded — see ``LiveTransport``).

Jitter is *seeded*: the same ``(seed, stream name)`` pair replays the same
schedule, which keeps retry behaviour reproducible in tests and lets the
conformance suite pin exact schedules.

Policies are configurable per transport instance (constructor) or fleet-wide
via environment variables (``REPRO_LIVE_CONNECT_BASE`` etc.), replacing the
class-constant knobs of the original fair-weather transport.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

__all__ = ["BackoffPolicy", "DEFAULT_CONNECT", "DEFAULT_RECONNECT"]


@dataclass(frozen=True)
class BackoffPolicy:
    """Capped exponential backoff with seeded multiplicative jitter.

    The *k*-th nominal delay is ``min(base * multiplier**k, cap)``; each
    emitted delay is the nominal one scaled by a uniform draw from
    ``[1 - jitter, 1 + jitter]``.  ``max_elapsed`` is a give-up budget the
    *caller* enforces (it knows when the attempt sequence started); ``None``
    means retry forever.
    """

    base: float = 0.05
    cap: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5
    max_elapsed: Optional[float] = 10.0

    def __post_init__(self) -> None:
        if self.base <= 0:
            raise ValueError("backoff base must be positive")
        if self.cap < self.base:
            raise ValueError("backoff cap must be >= base")
        if self.multiplier < 1.0:
            raise ValueError("backoff multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("backoff jitter must be in [0, 1)")
        if self.max_elapsed is not None and self.max_elapsed <= 0:
            raise ValueError("max_elapsed must be positive (or None)")

    # --------------------------------------------------------------- schedule
    def delays(self, rng=None, *, seed: Optional[int] = None) -> Iterator[float]:
        """Yield jittered delays forever (the caller owns the give-up rule).

        Pass either a generator exposing ``uniform(low, high)`` (e.g. a
        :class:`~repro.sim.random.RandomStreams` stream) or a ``seed`` from
        which a private ``numpy`` generator is derived — same seed, same
        schedule, which is what the determinism tests pin.
        """
        if rng is None:
            rng = np.random.default_rng(0 if seed is None else seed)
        delay = self.base
        while True:
            if self.jitter > 0:
                yield delay * float(rng.uniform(1.0 - self.jitter,
                                                1.0 + self.jitter))
            else:
                yield delay
            delay = min(delay * self.multiplier, self.cap)

    # -------------------------------------------------------------------- env
    @classmethod
    def from_env(cls, prefix: str, default: "BackoffPolicy") -> "BackoffPolicy":
        """Build a policy from ``<prefix>_BASE/_CAP/_MULTIPLIER/_JITTER/
        _WINDOW`` environment variables, falling back to ``default`` for any
        that is unset.  ``_WINDOW`` maps to ``max_elapsed``; the literal
        string ``"inf"`` (or ``"none"``) means retry forever."""

        def _float(name: str, fallback: float) -> float:
            raw = os.environ.get(f"{prefix}_{name}")
            return fallback if raw is None else float(raw)

        raw_window = os.environ.get(f"{prefix}_WINDOW")
        if raw_window is None:
            max_elapsed = default.max_elapsed
        elif raw_window.strip().lower() in ("inf", "none", ""):
            max_elapsed = None
        else:
            max_elapsed = float(raw_window)
        return cls(base=_float("BASE", default.base),
                   cap=_float("CAP", default.cap),
                   multiplier=_float("MULTIPLIER", default.multiplier),
                   jitter=_float("JITTER", default.jitter),
                   max_elapsed=max_elapsed)


#: first connect: bounded give-up window (peers are expected to come up)
DEFAULT_CONNECT = BackoffPolicy(base=0.05, cap=1.0, multiplier=2.0,
                                jitter=0.5, max_elapsed=10.0)

#: established-connection reconnect: retry forever at a capped cadence
DEFAULT_RECONNECT = BackoffPolicy(base=0.1, cap=2.0, multiplier=2.0,
                                  jitter=0.5, max_elapsed=None)
