"""Per-node process entrypoint for a live deployment.

``python -m repro.live.node_main <spec.json> <node_id> [--recovering]``

Reads the deployment document written by
:class:`~repro.live.deployment.LiveDeployment`, builds this node's stack,
binds its listening socket and control channel, joins the ready-file
barrier, runs the scenario schedule on wall-clock time, and writes its
protocol outcomes to ``out/<node_id>.json``.

A fresh node records its clock epoch (the host-wide ``time.monotonic``
value at barrier exit) in ``epoch/<node_id>`` before starting the
schedule.  A **recovering** incarnation — respawned by the supervisor or a
chaos plan after a crash — skips the barrier (its peers are long past it),
re-touches its ready file, rebases its clock onto the *original* epoch so
``now`` resumes mid-timeline, and replays only the part of the schedule
that is still in the future.  All replicated state from the first
incarnation is gone: that amnesia is the crash-stop model made honest, and
the fault-tolerant oracle accounts for it (DESIGN.md §15).
"""

from __future__ import annotations

import asyncio
import json
import os
import sys

from repro.live.control import ControlServer
from repro.live.scenario import ScenarioSpec, build_live_stack
from repro.transport.errors import TransportError

#: how long a node waits for the rest of the deployment to come up
BARRIER_TIMEOUT = 30.0
BARRIER_POLL = 0.01


def _touch_ready(rundir: str, node_id: str) -> str:
    path = os.path.join(rundir, "ready", node_id)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(str(os.getpid()))
    return path


async def _barrier(rundir: str, node_id: str, nodes) -> None:
    """Signal readiness and wait until every node has done the same."""
    _touch_ready(rundir, node_id)
    loop = asyncio.get_running_loop()
    deadline = loop.time() + BARRIER_TIMEOUT
    ready_dir = os.path.join(rundir, "ready")
    paths = [os.path.join(ready_dir, n) for n in nodes]
    while not all(os.path.exists(p) for p in paths):
        if loop.time() > deadline:
            missing = [p for p in paths if not os.path.exists(p)]
            raise TransportError(f"{node_id}: barrier timeout; "
                                 f"missing {missing}")
        await asyncio.sleep(BARRIER_POLL)


async def run_node(document: dict, node_id: str, *,
                   recovering: bool = False) -> dict:
    spec = ScenarioSpec.from_dict(document["spec"])
    kind = document["kind"]
    rundir = document["rundir"]
    addresses = {n: tuple(a) if isinstance(a, list) else a
                 for n, a in document["addresses"].items()}
    heartbeat_period = float(document.get("heartbeat_period", 0.0))

    stack = build_live_stack(spec, node_id, addresses, kind=kind,
                             loop=asyncio.get_running_loop(),
                             heartbeat_period=heartbeat_period)
    transport = stack.node.transport
    clock = stack.node.clock
    await transport.start()
    control = None
    control_path = (document.get("control") or {}).get(node_id)
    if control_path:
        control = ControlServer(transport, node_id, control_path)
        await control.start()

    epoch_path = os.path.join(rundir, "epoch", node_id)
    if not recovering:
        await _barrier(rundir, node_id, spec.nodes)
        # All listening sockets are up: rebase to t=0, record the epoch so a
        # future recovering incarnation can resume the same timeline
        # (time.monotonic/loop.time share an origin across processes on one
        # host), then start probing and the schedule.
        t0 = clock.rebase()
        os.makedirs(os.path.dirname(epoch_path), exist_ok=True)
        with open(epoch_path, "w", encoding="utf-8") as fh:
            fh.write(repr(t0))
        transport.start_heartbeats()
        stack.schedule()
        remaining = spec.duration
    else:
        # Rejoin a running deployment: no barrier (peers are mid-run),
        # resume the original timeline and only the future schedule.
        _touch_ready(rundir, node_id)
        with open(epoch_path, "r", encoding="utf-8") as fh:
            clock.rebase(float(fh.read()))
        transport.start_heartbeats()
        stack.schedule(from_time=clock.now)
        remaining = max(0.0, spec.duration - clock.now)
    await asyncio.sleep(remaining)
    stack.shutdown()
    outcome = stack.outcome()
    outcome["recovering"] = recovering
    outcome["reconnects"] = transport.reconnects
    outcome["drop_reasons"] = dict(transport.stats.drop_reasons)
    outcome["pid"] = os.getpid()
    if control is not None:
        await control.stop()
    await transport.stop()
    return outcome


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    recovering = "--recovering" in argv
    argv = [a for a in argv if a != "--recovering"]
    if len(argv) != 2:
        print("usage: python -m repro.live.node_main <spec.json> <node_id> "
              "[--recovering]", file=sys.stderr)
        return 2
    spec_path, node_id = argv
    with open(spec_path, "r", encoding="utf-8") as fh:
        document = json.load(fh)
    if node_id not in document["spec"]["nodes"]:
        print(f"unknown node id {node_id!r}", file=sys.stderr)
        return 2
    outcome = asyncio.run(run_node(document, node_id, recovering=recovering))
    out_path = os.path.join(document["rundir"], "out", f"{node_id}.json")
    tmp_path = out_path + ".tmp"
    with open(tmp_path, "w", encoding="utf-8") as fh:
        json.dump(outcome, fh, indent=2)
    os.replace(tmp_path, out_path)
    return 0


if __name__ == "__main__":
    sys.exit(main())
