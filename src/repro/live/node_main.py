"""Per-node process entrypoint for a live deployment.

``python -m repro.live.node_main <spec.json> <node_id>``

Reads the deployment document written by
:class:`~repro.live.deployment.LiveDeployment`, builds this node's stack,
binds its listening socket, joins the ready-file barrier, runs the scenario
schedule on wall-clock time, and writes its protocol outcomes to
``out/<node_id>.json``.
"""

from __future__ import annotations

import asyncio
import json
import os
import sys

from repro.live.scenario import ScenarioSpec, build_live_stack
from repro.transport.errors import TransportError

#: how long a node waits for the rest of the deployment to come up
BARRIER_TIMEOUT = 30.0
BARRIER_POLL = 0.01


async def _barrier(rundir: str, node_id: str, nodes) -> None:
    """Signal readiness and wait until every node has done the same."""
    ready_dir = os.path.join(rundir, "ready")
    own = os.path.join(ready_dir, node_id)
    with open(own, "w", encoding="utf-8") as fh:
        fh.write(str(os.getpid()))
    loop = asyncio.get_running_loop()
    deadline = loop.time() + BARRIER_TIMEOUT
    paths = [os.path.join(ready_dir, n) for n in nodes]
    while not all(os.path.exists(p) for p in paths):
        if loop.time() > deadline:
            missing = [p for p in paths if not os.path.exists(p)]
            raise TransportError(f"{node_id}: barrier timeout; "
                                 f"missing {missing}")
        await asyncio.sleep(BARRIER_POLL)


async def run_node(document: dict, node_id: str) -> dict:
    spec = ScenarioSpec.from_dict(document["spec"])
    kind = document["kind"]
    rundir = document["rundir"]
    addresses = {n: tuple(a) if isinstance(a, list) else a
                 for n, a in document["addresses"].items()}

    stack = build_live_stack(spec, node_id, addresses, kind=kind,
                             loop=asyncio.get_running_loop())
    transport = stack.node.transport
    await transport.start()
    await _barrier(rundir, node_id, spec.nodes)
    # All listening sockets are up: rebase to t=0 and start the schedule.
    stack.node.clock._t0 = stack.node.clock._loop.time()
    stack.schedule()
    await asyncio.sleep(spec.duration)
    stack.shutdown()
    outcome = stack.outcome()
    await transport.stop()
    return outcome


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 2:
        print("usage: python -m repro.live.node_main <spec.json> <node_id>",
              file=sys.stderr)
        return 2
    spec_path, node_id = argv
    with open(spec_path, "r", encoding="utf-8") as fh:
        document = json.load(fh)
    if node_id not in document["spec"]["nodes"]:
        print(f"unknown node id {node_id!r}", file=sys.stderr)
        return 2
    outcome = asyncio.run(run_node(document, node_id))
    out_path = os.path.join(document["rundir"], "out", f"{node_id}.json")
    tmp_path = out_path + ".tmp"
    with open(tmp_path, "w", encoding="utf-8") as fh:
        json.dump(outcome, fh, indent=2)
    os.replace(tmp_path, out_path)
    return 0


if __name__ == "__main__":
    sys.exit(main())
