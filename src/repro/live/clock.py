"""Wall-clock implementation of the transport seam's ``Clock``.

:class:`LiveClock` adapts an asyncio event loop to the scheduling surface
protocol code expects from the simulator: ``now`` (seconds since the clock
was created, so protocol timestamps stay small and comparable across a
deployment started together), ``call_at``/``call_after`` returning
cancellable handles, ``spawn`` for generator processes, and a seeded
:class:`~repro.sim.random.RandomStreams`.

``asyncio.TimerHandle`` already satisfies the ``Cancellable`` contract, so
handles are returned as-is — no wrapper allocation per scheduled callback.
The simulator-only keyword arguments (``priority``, ``recyclable``,
``label``) are accepted and ignored: priorities order simultaneous events,
and on a wall clock no two events are simultaneous.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Iterable, Optional

from repro.sim.random import RandomStreams
from repro.transport.errors import TransportError
from repro.transport.tasks import Process

#: sentinel distinguishing "no argument" from an argument of ``None``
#: (mirrors the simulator's engine-private sentinel)
_NO_ARG = object()


class LiveClock:
    """Seam ``Clock`` over an asyncio event loop."""

    def __init__(self, *, seed: int = 0,
                 loop: Optional[asyncio.AbstractEventLoop] = None) -> None:
        self._loop = loop if loop is not None else asyncio.get_event_loop()
        self._t0 = self._loop.time()
        self.seed = seed
        self.random = RandomStreams(seed)

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Seconds since this clock was created (monotonic)."""
        return self._loop.time() - self._t0

    def rebase(self, t0: Optional[float] = None) -> float:
        """Move the clock's origin and return the new ``_t0``.

        With no argument, ``now`` becomes 0 — deployments call this after
        the ready barrier so every process's scenario timeline starts
        together.  A *recovering* process instead passes the original
        epoch (the ``loop.time()``/``time.monotonic()`` value the first
        incarnation recorded, comparable across processes on one host), so
        its ``now`` resumes mid-timeline rather than replaying from 0.
        """
        self._t0 = self._loop.time() if t0 is None else float(t0)
        return self._t0

    # ------------------------------------------------------------- scheduling
    def call_after(self, delay: float, callback: Callable[..., None], *,
                   priority: int = 0, label: str = "", arg: Any = _NO_ARG,
                   recyclable: bool = False) -> asyncio.TimerHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise TransportError(f"negative delay {delay}")
        if arg is _NO_ARG:
            return self._loop.call_later(delay, callback)
        return self._loop.call_later(delay, callback, arg)

    def call_at(self, time: float, callback: Callable[..., None], *,
                priority: int = 0, label: str = "", arg: Any = _NO_ARG,
                recyclable: bool = False) -> asyncio.TimerHandle:
        """Schedule ``callback`` at absolute clock time ``time`` (clamped to now)."""
        return self.call_after(max(0.0, time - self.now), callback,
                               priority=priority, label=label, arg=arg,
                               recyclable=recyclable)

    def spawn(self, generator: Iterable[Any], *, label: str = "") -> Process:
        """Run a generator-based process (see :mod:`repro.transport.tasks`)."""
        return Process(self, generator, label=label)
