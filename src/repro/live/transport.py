"""Socket-backed implementation of the transport seam.

One :class:`LiveTransport` serves one process.  It keeps an address book
for the whole deployment (node id → UNIX-socket path or TCP ``(host,
port)``), hosts the locally registered :class:`ProtocolEndpoint` objects,
and moves messages as length-prefixed frames (:mod:`repro.live.wire`):

* a send to a **local** endpoint short-circuits through
  ``clock.call_after(0, ...)`` — same queue-hop a simulated zero-latency
  delivery takes, so handlers never run re-entrantly inside ``send``;
* a send to a **remote** id is encoded once and handed to a per-peer sender
  task that lazily connects (with bounded retries, since peers come up in
  arbitrary order) and streams frames over one long-lived connection;
* each local endpoint with an address gets a listening server; inbound
  frames are decoded into :class:`~repro.transport.message.Message` objects
  and dispatched to the endpoint's ``deliver``.

Semantics mirror the simulated :class:`~repro.sim.network.Network` where a
real network can honour them: sending to an id absent from the address book
and never registered locally raises ``KeyError`` (a wiring bug); sends
involving known-but-down endpoints are counted drops (``src-down`` /
``dst-down`` / ``departed``), never errors.  What a real network cannot
honour — deterministic latency, global delivery order — is exactly the
divergence the conformance oracle excludes (DESIGN.md §13).
"""

from __future__ import annotations

import asyncio
import contextlib
import os
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.live import wire
from repro.live.clock import LiveClock
from repro.transport.errors import TransportError
from repro.transport.message import Message, NetworkStats

#: node address: a UNIX-socket path, or a ``(host, port)`` pair for TCP
Address = Union[str, Tuple[str, int]]


class _PeerLink:
    """Outbound frame queue plus the sender task draining it."""

    __slots__ = ("queue", "task")

    def __init__(self, queue: "asyncio.Queue[Optional[bytes]]",
                 task: "asyncio.Task[None]") -> None:
        self.queue = queue
        self.task = task


class LiveTransport:
    """Seam ``Transport`` over asyncio stream connections."""

    DEFAULT_MESSAGE_BYTES = 1024

    #: how long a sender task keeps retrying its first connect; deployments
    #: start all processes concurrently, so early sends must tolerate peers
    #: whose listening socket is not up yet
    CONNECT_RETRY_WINDOW = 10.0
    CONNECT_RETRY_DELAY = 0.05

    def __init__(self, clock: LiveClock, addresses: Dict[str, Address], *,
                 kind: str = "uds") -> None:
        if kind not in ("uds", "tcp"):
            raise TransportError(f"unknown transport kind {kind!r}")
        self.clock = clock
        self.kind = kind
        self.addresses: Dict[str, Address] = dict(addresses)
        self.stats = NetworkStats()
        self._nodes: Dict[str, Any] = {}
        #: every id this transport can name — address book plus anything
        #: registered locally; sends to other ids raise (wiring bug)
        self._known: Set[str] = set(self.addresses)
        self._peers: Dict[str, _PeerLink] = {}
        self._servers: List[asyncio.AbstractServer] = []
        self._reader_tasks: Set["asyncio.Task[None]"] = set()
        self._next_msg_id = 0
        self._closing = False
        self.delivery_hooks: List[Any] = []

    # ------------------------------------------------------------ membership
    def register(self, node: Any) -> None:
        node_id = node.node_id
        if node_id in self._nodes:
            raise ValueError(f"node {node_id!r} already registered")
        self._nodes[node_id] = node
        self._known.add(node_id)

    def unregister(self, node_id: str) -> None:
        self._nodes.pop(node_id, None)

    @property
    def node_ids(self) -> List[str]:
        return list(self._nodes)

    def node(self, node_id: str) -> Any:
        return self._nodes[node_id]

    def has_node(self, node_id: str) -> bool:
        """True only for endpoints hosted by *this* process."""
        return node_id in self._nodes

    # ------------------------------------------------------------- lifecycle
    async def start(self) -> None:
        """Bind one listening server per locally hosted endpoint address."""
        for node_id in self._nodes:
            address = self.addresses.get(node_id)
            if address is None:
                continue  # purely in-process endpoint (tests)
            if self.kind == "uds":
                with contextlib.suppress(FileNotFoundError):
                    os.unlink(address)  # stale socket from a previous run
                server = await asyncio.start_unix_server(
                    self._serve_connection, path=address)
            else:
                host, port = address
                server = await asyncio.start_server(
                    self._serve_connection, host=host, port=port)
            self._servers.append(server)

    async def stop(self) -> None:
        """Tear down sender tasks, inbound readers and listening servers."""
        self._closing = True
        for link in self._peers.values():
            link.queue.put_nowait(None)  # sender sentinel: flush and exit
        for link in self._peers.values():
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(link.task, timeout=2.0)
            if not link.task.done():
                link.task.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await link.task
        self._peers.clear()
        for task in list(self._reader_tasks):
            task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await task
        self._reader_tasks.clear()
        for server in self._servers:
            server.close()
            await server.wait_closed()
        self._servers.clear()
        if self.kind == "uds":
            for node_id in self._nodes:
                address = self.addresses.get(node_id)
                if isinstance(address, str):
                    with contextlib.suppress(OSError):
                        os.unlink(address)

    # ---------------------------------------------------------------- sending
    def send(self, src: str, dst: str, *, protocol: str, msg_type: str,
             payload: Any = None,
             size_bytes: Optional[int] = None) -> Optional[Message]:
        size = (self.DEFAULT_MESSAGE_BYTES if size_bytes is None
                else int(size_bytes))
        if src not in self._nodes:
            if src not in self._known:
                raise KeyError(f"source node {src!r} is not registered")
            self._drop(protocol, size, "src-down")
            return None
        stats = self.stats
        if dst in self._nodes:
            # Local fast path: one queue hop through the clock, mirroring a
            # zero-latency simulated delivery (no re-entrant handler calls).
            stats.sent[protocol] += 1
            stats.bytes_sent[protocol] += size
            message = self._make_message(src, dst, protocol, msg_type,
                                         payload, size)
            self.clock.call_after(0.0, self._deliver_local, arg=message)
            return message
        if dst not in self.addresses:
            raise KeyError(f"destination node {dst!r} is not registered")
        stats.sent[protocol] += 1
        stats.bytes_sent[protocol] += size
        try:
            frame = wire.encode_envelope(src, dst, protocol, msg_type,
                                         payload, size, self.clock.now)
        except wire.WireError:
            self.stats.dropped[protocol] += 1
            self.stats.drop_reasons["encode-error"] += 1
            raise
        self._peer(dst).queue.put_nowait(frame)
        return self._make_message(src, dst, protocol, msg_type, payload, size)

    def send_many(self, src: str, dsts: Sequence[str], *, protocol: str,
                  msg_type: str, payload: Any = None,
                  size_bytes: Optional[int] = None) -> List[Message]:
        return [m for dst in dsts
                if (m := self.send(src, dst, protocol=protocol,
                                   msg_type=msg_type, payload=payload,
                                   size_bytes=size_bytes)) is not None]

    def _make_message(self, src: str, dst: str, protocol: str, msg_type: str,
                      payload: Any, size: int) -> Message:
        msg_id = self._next_msg_id
        self._next_msg_id = msg_id + 1
        now = self.clock.now
        return Message(msg_id=msg_id, src=src, dst=dst, protocol=protocol,
                       msg_type=msg_type, payload=payload, size_bytes=size,
                       sent_at=now, deliver_at=now)

    def _drop(self, protocol: str, size: int, reason: str) -> None:
        stats = self.stats
        stats.sent[protocol] += 1
        stats.bytes_sent[protocol] += size
        stats.dropped[protocol] += 1
        stats.drop_reasons[reason] += 1

    # ------------------------------------------------------- local delivery
    def _deliver_local(self, message: Message) -> None:
        node = self._nodes.get(message.dst)
        if node is None:
            self.stats.dropped[message.protocol] += 1
            self.stats.drop_reasons["departed"] += 1
            return
        self.stats.delivered[message.protocol] += 1
        for hook in self.delivery_hooks:
            hook(message)
        node.deliver(message)

    # ------------------------------------------------------- outbound peers
    def _peer(self, dst: str) -> _PeerLink:
        link = self._peers.get(dst)
        if link is None:
            queue: "asyncio.Queue[Optional[bytes]]" = asyncio.Queue()
            task = asyncio.get_event_loop().create_task(
                self._sender_loop(dst, queue))
            link = self._peers[dst] = _PeerLink(queue, task)
        return link

    async def _connect(self, address: Address):
        if self.kind == "uds":
            return await asyncio.open_unix_connection(path=address)
        host, port = address
        return await asyncio.open_connection(host=host, port=port)

    async def _sender_loop(self, dst: str,
                           queue: "asyncio.Queue[Optional[bytes]]") -> None:
        address = self.addresses[dst]
        writer: Optional[asyncio.StreamWriter] = None
        try:
            while True:
                frame = await queue.get()
                if frame is None:
                    break
                if writer is None:
                    writer = await self._connect_with_retry(address)
                if writer is None:
                    self.stats.dropped["live"] += 1
                    self.stats.drop_reasons["dst-down"] += 1
                    continue
                try:
                    writer.write(frame)
                    await writer.drain()
                except (ConnectionError, OSError):
                    writer = None
                    self.stats.dropped["live"] += 1
                    self.stats.drop_reasons["dst-down"] += 1
        finally:
            if writer is not None:
                writer.close()
                with contextlib.suppress(ConnectionError, OSError):
                    await writer.wait_closed()

    async def _connect_with_retry(
            self, address: Address) -> Optional[asyncio.StreamWriter]:
        deadline = self.clock.now + self.CONNECT_RETRY_WINDOW
        while not self._closing:
            try:
                _, writer = await self._connect(address)
                return writer
            except (ConnectionError, OSError, FileNotFoundError):
                if self.clock.now >= deadline:
                    return None
                await asyncio.sleep(self.CONNECT_RETRY_DELAY)
        return None

    # -------------------------------------------------------- inbound frames
    async def _serve_connection(self, reader: asyncio.StreamReader,
                                stream_writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._reader_tasks.add(task)
            task.add_done_callback(self._reader_tasks.discard)
        try:
            while True:
                try:
                    body = await wire.read_frame(reader)
                except (asyncio.IncompleteReadError, ConnectionError, OSError):
                    break
                (src, dst, protocol, msg_type, payload, size_bytes,
                 _sent_at) = wire.decode_envelope(body)
                message = Message(
                    msg_id=self._next_msg_id, src=src, dst=dst,
                    protocol=protocol, msg_type=msg_type, payload=payload,
                    size_bytes=size_bytes, sent_at=self.clock.now,
                    deliver_at=self.clock.now)
                self._next_msg_id += 1
                self._deliver_local(message)
        finally:
            stream_writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await stream_writer.wait_closed()

    # ------------------------------------------------------------- accounting
    def messages_sent(self, protocol_prefix: str = "") -> int:
        return self.stats.total_sent(protocol_prefix)

    def bytes_sent(self, protocol_prefix: str = "") -> int:
        return self.stats.total_bytes(protocol_prefix)
