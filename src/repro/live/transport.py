"""Socket-backed implementation of the transport seam.

One :class:`LiveTransport` serves one process.  It keeps an address book
for the whole deployment (node id → UNIX-socket path or TCP ``(host,
port)``), hosts the locally registered :class:`ProtocolEndpoint` objects,
and moves messages as length-prefixed frames (:mod:`repro.live.wire`):

* a send to a **local** endpoint short-circuits through
  ``clock.call_after(0, ...)`` — same queue-hop a simulated zero-latency
  delivery takes, so handlers never run re-entrantly inside ``send``;
* a send to a **remote** id is encoded once and handed to a per-peer sender
  task that lazily connects and streams frames over one long-lived
  connection.  Connects and *re*-connects use capped, jittered exponential
  backoff (:mod:`repro.live.backoff`): the first connect gives up after a
  bounded window (a peer that never came up), an established connection
  that drops is re-dialed forever (a supervised restart may bring the peer
  back at any time).  The per-peer queue is **bounded**: while a peer is
  down the oldest frame is evicted per new send and counted as a
  ``queue-overflow`` drop, so memory stays flat instead of growing with
  outage length;
* each local endpoint with an address gets a listening server; inbound
  frames are decoded into :class:`~repro.transport.message.Message` objects
  and dispatched to the endpoint's ``deliver``.  A single oversized or
  malformed frame closes *that* connection with a counted ``frame-error``
  drop — it never kills the server task;
* :meth:`start_heartbeats` runs a liveness probe per remote peer (a cheap
  connect/close at a jittered period).  ``heartbeat_misses`` consecutive
  failures mark the peer down: sends to it become immediate counted
  ``dst-down`` drops (the same crash-stop semantics sim ``Network`` gives a
  failed node) and ``liveness_hooks`` / ``ProtocolEndpoint.peer_failed``
  fire; one successful probe marks it back up and fires
  ``peer_recovered``.

The chaos control channel (:mod:`repro.live.chaos`) injects the sim fault
taxonomy at this layer: :meth:`set_blocked_peers` turns sends to (and
inbound frames from) the blocked set into counted ``partition`` drops, and
:meth:`set_loss_probability` applies seeded Bernoulli ``loss`` drops at
send time — the same drop reasons the simulated ``Network`` records, so
``NetworkStats`` stays comparable across backends.

Semantics mirror the simulated :class:`~repro.sim.network.Network` where a
real network can honour them: sending to an id absent from the address book
and never registered locally raises ``KeyError`` (a wiring bug); sends
involving known-but-down endpoints are counted drops (``src-down`` /
``dst-down`` / ``departed``), never errors.  What a real network cannot
honour — deterministic latency, global delivery order — is exactly the
divergence the conformance oracle excludes (DESIGN.md §13, §15).
"""

from __future__ import annotations

import asyncio
import collections
import contextlib
import os
from typing import (Any, Deque, Dict, Iterator, List, Optional, Sequence,
                    Set, Tuple, Union)

from repro.live import wire
from repro.live.backoff import DEFAULT_CONNECT, DEFAULT_RECONNECT, BackoffPolicy
from repro.live.clock import LiveClock
from repro.transport.errors import TransportError
from repro.transport.message import Message, NetworkStats

#: node address: a UNIX-socket path, or a ``(host, port)`` pair for TCP
Address = Union[str, Tuple[str, int]]

#: sends queued toward a peer while its connection is down are bounded to
#: this many frames per peer; beyond it the oldest queued frame is evicted
#: as a counted ``queue-overflow`` drop (override: $REPRO_LIVE_QUEUE_FRAMES)
DEFAULT_QUEUE_FRAMES = 1024

#: consecutive failed liveness probes before a peer is declared down
DEFAULT_HEARTBEAT_MISSES = 3


class _PeerLink:
    """Outbound bounded frame queue plus the sender task draining it."""

    __slots__ = ("frames", "event", "task", "writer", "connects", "closed")

    def __init__(self, task: "asyncio.Task[None]") -> None:
        #: queued ``(protocol, frame)`` pairs — protocol kept so eviction and
        #: send-failure drops are charged to the right protocol counter
        self.frames: Deque[Tuple[str, bytes]] = collections.deque()
        self.event = asyncio.Event()
        self.task = task
        self.writer: Optional[asyncio.StreamWriter] = None
        self.connects = 0          # successful connects (first + re-dials)
        self.closed = False        # stop(): flush what is queued, then exit


class LiveTransport:
    """Seam ``Transport`` over asyncio stream connections."""

    DEFAULT_MESSAGE_BYTES = 1024

    def __init__(self, clock: LiveClock, addresses: Dict[str, Address], *,
                 kind: str = "uds",
                 connect_backoff: Optional[BackoffPolicy] = None,
                 reconnect_backoff: Optional[BackoffPolicy] = None,
                 max_queue_frames: Optional[int] = None,
                 heartbeat_period: Optional[float] = None,
                 heartbeat_misses: Optional[int] = None) -> None:
        if kind not in ("uds", "tcp"):
            raise TransportError(f"unknown transport kind {kind!r}")
        self.clock = clock
        self.kind = kind
        self.addresses: Dict[str, Address] = dict(addresses)
        self.stats = NetworkStats()
        self._nodes: Dict[str, Any] = {}
        #: every id this transport can name — address book plus anything
        #: registered locally; sends to other ids raise (wiring bug)
        self._known: Set[str] = set(self.addresses)
        self._peers: Dict[str, _PeerLink] = {}
        self._servers: List[asyncio.AbstractServer] = []
        self._reader_tasks: Set["asyncio.Task[None]"] = set()
        self._next_msg_id = 0
        self._closing = False
        self.delivery_hooks: List[Any] = []

        # --- fault tolerance knobs (constructor beats environment) ---
        self.connect_backoff = (connect_backoff if connect_backoff is not None
                                else BackoffPolicy.from_env(
                                    "REPRO_LIVE_CONNECT", DEFAULT_CONNECT))
        self.reconnect_backoff = (reconnect_backoff
                                  if reconnect_backoff is not None
                                  else BackoffPolicy.from_env(
                                      "REPRO_LIVE_RECONNECT",
                                      DEFAULT_RECONNECT))
        self.max_queue_frames = (
            int(max_queue_frames) if max_queue_frames is not None
            else int(os.environ.get("REPRO_LIVE_QUEUE_FRAMES",
                                    DEFAULT_QUEUE_FRAMES)))
        if self.max_queue_frames < 1:
            raise TransportError("max_queue_frames must be >= 1")
        if heartbeat_period is None:
            raw = os.environ.get("REPRO_LIVE_HB_PERIOD", "")
            heartbeat_period = float(raw) if raw else 0.0
        self.heartbeat_period = float(heartbeat_period)
        self.heartbeat_misses = (
            int(heartbeat_misses) if heartbeat_misses is not None
            else int(os.environ.get("REPRO_LIVE_HB_MISSES",
                                    DEFAULT_HEARTBEAT_MISSES)))

        #: successful re-dials of previously established connections,
        #: summed over peers — the chaos CLI asserts this is nonzero after
        #: a crash/restart plan
        self.reconnects = 0
        #: peers the liveness probe currently believes are crashed
        self._peer_down: Set[str] = set()
        #: callables ``hook(peer_id, alive)`` fired on liveness transitions
        self.liveness_hooks: List[Any] = []
        self._probe_tasks: List["asyncio.Task[None]"] = []

        # --- chaos drop rules (pushed over the control channel) ---
        self._blocked_peers: Set[str] = set()
        self._loss_probability = 0.0
        self._loss_rng: Optional[Any] = None

    # ------------------------------------------------------------ membership
    def register(self, node: Any) -> None:
        node_id = node.node_id
        if node_id in self._nodes:
            raise ValueError(f"node {node_id!r} already registered")
        self._nodes[node_id] = node
        self._known.add(node_id)

    def unregister(self, node_id: str) -> None:
        self._nodes.pop(node_id, None)

    @property
    def node_ids(self) -> List[str]:
        return list(self._nodes)

    def node(self, node_id: str) -> Any:
        return self._nodes[node_id]

    def has_node(self, node_id: str) -> bool:
        """True only for endpoints hosted by *this* process."""
        return node_id in self._nodes

    # ------------------------------------------------------------- lifecycle
    async def start(self) -> None:
        """Bind one listening server per locally hosted endpoint address."""
        for node_id in self._nodes:
            address = self.addresses.get(node_id)
            if address is None:
                continue  # purely in-process endpoint (tests)
            if self.kind == "uds":
                with contextlib.suppress(FileNotFoundError):
                    os.unlink(address)  # stale socket from a previous run
                server = await asyncio.start_unix_server(
                    self._serve_connection, path=address)
            else:
                host, port = address
                server = await asyncio.start_server(
                    self._serve_connection, host=host, port=port)
            self._servers.append(server)

    def start_heartbeats(self) -> None:
        """Begin liveness probing of every remote peer in the address book.

        Separate from :meth:`start` on purpose: deployments call it *after*
        the ready barrier, so slow bring-up is never misread as a crash.
        A ``heartbeat_period`` of 0 (the default) disables probing.
        """
        if self.heartbeat_period <= 0 or self._closing:
            return
        loop = asyncio.get_event_loop()
        for peer_id, address in self.addresses.items():
            if peer_id in self._nodes:
                continue
            self._probe_tasks.append(
                loop.create_task(self._probe_loop(peer_id, address)))

    async def stop(self) -> None:
        """Tear down probes, sender tasks, inbound readers and servers."""
        self._closing = True
        for task in self._probe_tasks:
            task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await task
        self._probe_tasks.clear()
        for link in self._peers.values():
            link.closed = True      # sender sentinel: flush and exit
            link.event.set()
        for link in self._peers.values():
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(link.task, timeout=2.0)
            if not link.task.done():
                link.task.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await link.task
        self._peers.clear()
        for task in list(self._reader_tasks):
            task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await task
        self._reader_tasks.clear()
        for server in self._servers:
            server.close()
            await server.wait_closed()
        self._servers.clear()
        if self.kind == "uds":
            for node_id in self._nodes:
                address = self.addresses.get(node_id)
                if isinstance(address, str):
                    with contextlib.suppress(OSError):
                        os.unlink(address)

    # ------------------------------------------------------ chaos drop rules
    def set_blocked_peers(self, peers: Sequence[str]) -> None:
        """Partition rule: sends to (and frames from) ``peers`` become
        counted ``partition`` drops, matching sim ``Network.partition``."""
        self._blocked_peers = set(peers)

    def set_loss_probability(self, probability: float) -> None:
        """Bernoulli ``loss`` drops at send time, seeded from the clock's
        random streams so a given (seed, sequence of sends) replays."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError("loss probability must be within [0, 1]")
        self._loss_probability = float(probability)

    def _loss_draw(self) -> bool:
        if self._loss_probability <= 0.0:
            return False
        if self._loss_rng is None:
            self._loss_rng = self.clock.random.stream("live.chaos-loss")
        return bool(self._loss_rng.uniform(0.0, 1.0)
                    < self._loss_probability)

    # --------------------------------------------------------------- liveness
    @property
    def down_peers(self) -> Set[str]:
        return set(self._peer_down)

    def _mark_peer(self, peer_id: str, *, alive: bool) -> None:
        if alive:
            if peer_id not in self._peer_down:
                return
            self._peer_down.discard(peer_id)
        else:
            if peer_id in self._peer_down:
                return
            self._peer_down.add(peer_id)
        for hook in self.liveness_hooks:
            hook(peer_id, alive)
        for node in list(self._nodes.values()):
            notify = getattr(
                node, "peer_recovered" if alive else "peer_failed", None)
            if notify is not None:
                notify(peer_id)

    async def _probe_loop(self, peer_id: str, address: Address) -> None:
        missed = 0
        rng = self.clock.random.stream(f"live.hb.{peer_id}")
        while not self._closing:
            # jittered period: probes across the fleet de-synchronise
            await asyncio.sleep(
                self.heartbeat_period * float(rng.uniform(0.85, 1.15)))
            try:
                _, writer = await asyncio.wait_for(
                    self._connect(address), timeout=self.heartbeat_period * 2)
                writer.close()
                with contextlib.suppress(ConnectionError, OSError):
                    await writer.wait_closed()
            except (ConnectionError, OSError, FileNotFoundError,
                    asyncio.TimeoutError):
                missed += 1
                if missed >= self.heartbeat_misses:
                    self._mark_peer(peer_id, alive=False)
                continue
            missed = 0
            self._mark_peer(peer_id, alive=True)

    # ---------------------------------------------------------------- sending
    def send(self, src: str, dst: str, *, protocol: str, msg_type: str,
             payload: Any = None,
             size_bytes: Optional[int] = None) -> Optional[Message]:
        size = (self.DEFAULT_MESSAGE_BYTES if size_bytes is None
                else int(size_bytes))
        if src not in self._nodes:
            if src not in self._known:
                raise KeyError(f"source node {src!r} is not registered")
            self._drop(protocol, size, "src-down")
            return None
        if dst not in self._nodes and dst not in self.addresses:
            raise KeyError(f"destination node {dst!r} is not registered")
        if dst in self._blocked_peers:
            self._drop(protocol, size, "partition")
            return None
        if self._loss_draw():
            self._drop(protocol, size, "loss")
            return None
        if dst in self._peer_down:
            # crash-stop as observed from here: the peer is gone, sends to
            # it degrade to counted drops exactly like sim's failed nodes
            self._drop(protocol, size, "dst-down")
            return None
        stats = self.stats
        if dst in self._nodes:
            # Local fast path: one queue hop through the clock, mirroring a
            # zero-latency simulated delivery (no re-entrant handler calls).
            stats.sent[protocol] += 1
            stats.bytes_sent[protocol] += size
            message = self._make_message(src, dst, protocol, msg_type,
                                         payload, size)
            self.clock.call_after(0.0, self._deliver_local, arg=message)
            return message
        stats.sent[protocol] += 1
        stats.bytes_sent[protocol] += size
        try:
            frame = wire.encode_envelope(src, dst, protocol, msg_type,
                                         payload, size, self.clock.now)
        except wire.WireError:
            self.stats.dropped[protocol] += 1
            self.stats.drop_reasons["encode-error"] += 1
            raise
        self._enqueue(dst, protocol, frame)
        return self._make_message(src, dst, protocol, msg_type, payload, size)

    def send_many(self, src: str, dsts: Sequence[str], *, protocol: str,
                  msg_type: str, payload: Any = None,
                  size_bytes: Optional[int] = None) -> List[Message]:
        return [m for dst in dsts
                if (m := self.send(src, dst, protocol=protocol,
                                   msg_type=msg_type, payload=payload,
                                   size_bytes=size_bytes)) is not None]

    def _make_message(self, src: str, dst: str, protocol: str, msg_type: str,
                      payload: Any, size: int) -> Message:
        msg_id = self._next_msg_id
        self._next_msg_id = msg_id + 1
        now = self.clock.now
        return Message(msg_id=msg_id, src=src, dst=dst, protocol=protocol,
                       msg_type=msg_type, payload=payload, size_bytes=size,
                       sent_at=now, deliver_at=now)

    def _drop(self, protocol: str, size: int, reason: str) -> None:
        stats = self.stats
        stats.sent[protocol] += 1
        stats.bytes_sent[protocol] += size
        stats.dropped[protocol] += 1
        stats.drop_reasons[reason] += 1

    def _count_drop(self, protocol: str, reason: str) -> None:
        """A frame already counted as sent failed later (queue eviction,
        connection loss): charge only the drop, never re-count the send."""
        self.stats.dropped[protocol] += 1
        self.stats.drop_reasons[reason] += 1

    # ------------------------------------------------------- local delivery
    def _deliver_local(self, message: Message) -> None:
        node = self._nodes.get(message.dst)
        if node is None:
            self.stats.dropped[message.protocol] += 1
            self.stats.drop_reasons["departed"] += 1
            return
        self.stats.delivered[message.protocol] += 1
        for hook in self.delivery_hooks:
            hook(message)
        node.deliver(message)

    # ------------------------------------------------------- outbound peers
    def _enqueue(self, dst: str, protocol: str, frame: bytes) -> None:
        link = self._peer(dst)
        if len(link.frames) >= self.max_queue_frames:
            evicted_protocol, _ = link.frames.popleft()
            self._count_drop(evicted_protocol, "queue-overflow")
        link.frames.append((protocol, frame))
        link.event.set()

    def _peer(self, dst: str) -> _PeerLink:
        link = self._peers.get(dst)
        if link is None:
            link = _PeerLink(asyncio.get_event_loop().create_task(
                self._sender_loop(dst)))
            self._peers[dst] = link
        return link

    async def _connect(self, address: Address):
        if self.kind == "uds":
            return await asyncio.open_unix_connection(path=address)
        host, port = address
        return await asyncio.open_connection(host=host, port=port)

    async def _sender_loop(self, dst: str) -> None:
        address = self.addresses[dst]
        # seeded per-peer jitter: same (seed, peer) replays the same backoff
        rng = self.clock.random.stream(f"live.backoff.{dst}")
        link: Optional[_PeerLink] = None
        try:
            while True:
                link = self._peers[dst]
                while not link.frames and not link.closed:
                    link.event.clear()
                    await link.event.wait()
                if not link.frames:
                    break  # closed and fully drained
                protocol, frame = link.frames.popleft()
                if link.writer is None:
                    link.writer = await self._connect_with_backoff(
                        link, address, rng)
                if link.writer is None:
                    self._count_drop(protocol, "dst-down")
                    continue
                try:
                    link.writer.write(frame)
                    await link.writer.drain()
                except (ConnectionError, OSError):
                    # established connection gone: drop this frame, re-dial
                    # (with the reconnect policy) before the next one
                    await self._close_writer(link)
                    self._count_drop(protocol, "conn-lost")
        finally:
            if link is not None:
                await self._close_writer(link)

    async def _close_writer(self, link: _PeerLink) -> None:
        writer, link.writer = link.writer, None
        if writer is not None:
            writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await writer.wait_closed()

    async def _connect_with_backoff(
            self, link: _PeerLink, address: Address,
            rng: Any) -> Optional[asyncio.StreamWriter]:
        """Dial ``address`` under the connect policy (first ever connect,
        bounded give-up window) or the reconnect policy (a previously
        established connection dropped; retry until closed)."""
        policy = (self.connect_backoff if link.connects == 0
                  else self.reconnect_backoff)
        delays: Iterator[float] = policy.delays(rng)
        started = self.clock.now
        while not self._closing:
            try:
                _, writer = await self._connect(address)
            except (ConnectionError, OSError, FileNotFoundError):
                delay = next(delays)
                if (policy.max_elapsed is not None
                        and self.clock.now + delay - started
                        > policy.max_elapsed):
                    return None
                await asyncio.sleep(delay)
                continue
            link.connects += 1
            if link.connects > 1:
                self.reconnects += 1
            return writer
        return None

    # -------------------------------------------------------- inbound frames
    async def _serve_connection(self, reader: asyncio.StreamReader,
                                stream_writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._reader_tasks.add(task)
            task.add_done_callback(self._reader_tasks.discard)
        try:
            while True:
                try:
                    body = await wire.read_frame(reader)
                except (asyncio.IncompleteReadError, ConnectionError, OSError):
                    break
                except wire.WireError:
                    # oversized/corrupt frame: close THIS connection with a
                    # counted drop; the server task and every other peer's
                    # connection stay up
                    self._count_drop("live", "frame-error")
                    break
                try:
                    (src, dst, protocol, msg_type, payload, size_bytes,
                     _sent_at) = wire.decode_envelope(body)
                except wire.WireError:
                    self._count_drop("live", "frame-error")
                    break
                if src in self._blocked_peers:
                    # frames in flight when the partition rule landed, or
                    # from a peer that has not received its rule yet
                    self._count_drop(protocol, "partition")
                    continue
                message = Message(
                    msg_id=self._next_msg_id, src=src, dst=dst,
                    protocol=protocol, msg_type=msg_type, payload=payload,
                    size_bytes=size_bytes, sent_at=self.clock.now,
                    deliver_at=self.clock.now)
                self._next_msg_id += 1
                self._deliver_local(message)
        finally:
            stream_writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await stream_writer.wait_closed()

    # ------------------------------------------------------------- accounting
    def messages_sent(self, protocol_prefix: str = "") -> int:
        return self.stats.total_sent(protocol_prefix)

    def bytes_sent(self, protocol_prefix: str = "") -> int:
        return self.stats.total_bytes(protocol_prefix)
