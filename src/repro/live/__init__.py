"""Live (wall-clock, socket-backed) backend for the transport seam.

The protocol layers (``repro.core``, ``repro.overlay``, ``repro.runtime``,
``repro.store``) speak only the :mod:`repro.transport` interfaces; this
package provides their real-network implementation:

* :class:`~repro.live.clock.LiveClock` — ``Clock`` over an asyncio loop;
* :class:`~repro.live.transport.LiveTransport` — ``Transport`` over
  length-prefixed frames (:mod:`repro.live.wire`) on UNIX or TCP sockets,
  with reconnect-with-backoff (:mod:`repro.live.backoff`), bounded per-peer
  queues, and heartbeat liveness probing;
* :class:`~repro.live.node.LiveNode` — a
  :class:`~repro.transport.endpoint.ProtocolEndpoint` on wall-clock time;
* :mod:`repro.live.scenario` — the backend-neutral conformance scenario and
  the simulator-as-oracle comparison (fair-weather and fault-tolerant);
* :class:`~repro.live.deployment.LiveDeployment` +
  :mod:`repro.live.node_main` — one-process-per-node bring-up/teardown with
  opt-in crash supervision (:class:`~repro.live.deployment.RestartPolicy`);
* :mod:`repro.live.chaos` + :mod:`repro.live.control` — replay a
  :class:`~repro.scenarios.plan.FaultPlan` against the real processes:
  signals for crashes, supervised restarts for recoveries, control-channel
  drop rules for partitions and loss;
* ``python -m repro.live`` — CLI running a seeded localhost deployment and
  checking it against the simulator oracle (``--fault-plan`` for chaos).
"""

from repro.live.backoff import BackoffPolicy
from repro.live.chaos import LiveFaultController, builtin_plan, resolve_plan
from repro.live.clock import LiveClock
from repro.live.control import ControlClient, ControlError, ControlServer
from repro.live.deployment import LiveDeployment, RestartPolicy
from repro.live.node import LiveNode
from repro.live.transport import LiveTransport
from repro.live.wire import WireError

__all__ = ["BackoffPolicy", "ControlClient", "ControlError", "ControlServer",
           "LiveClock", "LiveDeployment", "LiveFaultController", "LiveNode",
           "LiveTransport", "RestartPolicy", "WireError", "builtin_plan",
           "resolve_plan"]
