"""Live (wall-clock, socket-backed) backend for the transport seam.

The protocol layers (``repro.core``, ``repro.overlay``, ``repro.runtime``,
``repro.store``) speak only the :mod:`repro.transport` interfaces; this
package provides their real-network implementation:

* :class:`~repro.live.clock.LiveClock` — ``Clock`` over an asyncio loop;
* :class:`~repro.live.transport.LiveTransport` — ``Transport`` over
  length-prefixed frames (:mod:`repro.live.wire`) on UNIX or TCP sockets;
* :class:`~repro.live.node.LiveNode` — a
  :class:`~repro.transport.endpoint.ProtocolEndpoint` on wall-clock time;
* :mod:`repro.live.scenario` — the backend-neutral conformance scenario and
  the simulator-as-oracle comparison;
* :class:`~repro.live.deployment.LiveDeployment` +
  :mod:`repro.live.node_main` — one-process-per-node bring-up/teardown;
* ``python -m repro.live`` — CLI running a seeded localhost deployment and
  checking it against the simulator oracle.
"""

from repro.live.clock import LiveClock
from repro.live.node import LiveNode
from repro.live.transport import LiveTransport
from repro.live.wire import WireError

__all__ = ["LiveClock", "LiveNode", "LiveTransport", "WireError"]
