"""Per-node control channel: how the chaos controller reaches inside a node.

Every node process of a supervised deployment binds a small UNIX-socket
control server next to its transport.  The parent's
:class:`~repro.live.chaos.LiveFaultController` uses it to push the fault
rules a real signal cannot express — partitions and loss probabilities are
*network* behaviour, so they are enforced by :class:`LiveTransport` drop
rules rather than by killing anything:

* ``{"op": "partition", "blocked": [...]}`` — sends to (and frames from)
  the listed peers become counted ``partition`` drops;
* ``{"op": "heal"}`` — clear the blocked set;
* ``{"op": "set_loss", "probability": p}`` — seeded Bernoulli ``loss``
  drops at send time;
* ``{"op": "ping"}`` — liveness + introspection: returns the node's clock,
  reconnect count and a ``NetworkStats`` snapshot.

The wire format is the deployment's usual length-prefixed framing with a
plain-JSON body (no tagged payloads needed — control requests are flat
dicts).  Each request gets exactly one response frame; the client opens a
fresh connection per call, which keeps it a dozen lines of blocking socket
code the parent can use without an event loop.  Control sockets are always
UNIX-domain, even for TCP transports — the controller runs on the same
host by construction.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import socket
import struct
from typing import Any, Dict, Optional

from repro.transport.errors import TransportError

_HEADER = struct.Struct(">I")

#: control frames are tiny; anything bigger is a protocol violation
MAX_CONTROL_BYTES = 1 << 20


class ControlError(TransportError):
    """A control request could not be delivered or answered."""


def control_address(rundir: str, node_id: str) -> str:
    return os.path.join(rundir, "ctl", f"{node_id}.sock")


def _frame(obj: Dict[str, Any]) -> bytes:
    body = json.dumps(obj, sort_keys=True).encode("utf-8")
    if len(body) > MAX_CONTROL_BYTES:
        raise ControlError(f"control frame too large ({len(body)} bytes)")
    return _HEADER.pack(len(body)) + body


class ControlServer:
    """Asyncio side: answers control requests inside a node process."""

    def __init__(self, transport: Any, node_id: str, address: str) -> None:
        self.transport = transport
        self.node_id = node_id
        self.address = address
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        with contextlib.suppress(FileNotFoundError):
            os.unlink(self.address)  # stale socket from a previous incarnation
        self._server = await asyncio.start_unix_server(self._serve,
                                                       path=self.address)

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        with contextlib.suppress(OSError):
            os.unlink(self.address)

    async def _serve(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    header = await reader.readexactly(_HEADER.size)
                    (length,) = _HEADER.unpack(header)
                    if length > MAX_CONTROL_BYTES:
                        break
                    body = await reader.readexactly(length)
                except (asyncio.IncompleteReadError, ConnectionError, OSError):
                    break
                try:
                    request = json.loads(body)
                    response = self._handle(request)
                except Exception as exc:  # noqa: BLE001 - reply, don't die
                    response = {"ok": False,
                                "error": f"{type(exc).__name__}: {exc}"}
                writer.write(_frame(response))
                try:
                    await writer.drain()
                except (ConnectionError, OSError):
                    break
        finally:
            writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await writer.wait_closed()

    def _handle(self, request: Dict[str, Any]) -> Dict[str, Any]:
        op = request.get("op")
        if op == "partition":
            self.transport.set_blocked_peers(request.get("blocked", []))
            return {"ok": True}
        if op == "heal":
            self.transport.set_blocked_peers(())
            return {"ok": True}
        if op == "set_loss":
            self.transport.set_loss_probability(
                float(request["probability"]))
            return {"ok": True}
        if op == "ping":
            return {"ok": True, "node_id": self.node_id,
                    "pid": os.getpid(),
                    "now": self.transport.clock.now,
                    "reconnects": self.transport.reconnects,
                    "stats": self.transport.stats.snapshot()}
        return {"ok": False, "error": f"unknown control op {op!r}"}


class ControlClient:
    """Blocking side: one connection, one request, one response.

    Used from the parent process (no event loop there); a connect or read
    failure raises :class:`ControlError`, which the chaos controller treats
    as "node not answering yet — retry next tick".
    """

    def __init__(self, address: str, *, timeout: float = 1.0) -> None:
        self.address = address
        self.timeout = timeout

    def call(self, request: Dict[str, Any]) -> Dict[str, Any]:
        try:
            with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
                sock.settimeout(self.timeout)
                sock.connect(self.address)
                sock.sendall(_frame(request))
                header = self._recv_exactly(sock, _HEADER.size)
                (length,) = _HEADER.unpack(header)
                if length > MAX_CONTROL_BYTES:
                    raise ControlError("oversized control response")
                body = self._recv_exactly(sock, length)
        except (ConnectionError, OSError, socket.timeout) as exc:
            raise ControlError(
                f"control call to {self.address} failed: {exc}") from exc
        response = json.loads(body)
        if not response.get("ok", False):
            raise ControlError(
                f"control op rejected: {response.get('error', response)!r}")
        return response

    @staticmethod
    def _recv_exactly(sock: socket.socket, n: int) -> bytes:
        chunks = []
        remaining = n
        while remaining:
            chunk = sock.recv(remaining)
            if not chunk:
                raise ConnectionError("control peer closed mid-frame")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)
