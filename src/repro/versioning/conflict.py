"""Conflict detection and reference-state selection helpers.

The detection module's public face is the paper's ``detect(update)`` API:
"success" when no inconsistency exists, "fail" when a conflict is detected
(Section 4.3).  Internally that decision is made here by comparing version
vectors; this module also implements the *reference consistent state*
selection rule used in Section 4.4.1 ("the replica with higher ID value
becomes the reference consistent state") and the pairwise merge used by the
resolution mechanisms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.versioning.extended_vector import ErrorTriple, ExtendedVersionVector
from repro.versioning.version_vector import Ordering, VersionVector


@dataclass(frozen=True)
class ConflictReport:
    """Outcome of comparing two replicas' vectors."""

    ordering: Ordering
    #: True when the replicas differ at all (either direction or concurrent)
    inconsistent: bool
    #: True only for concurrent (incomparable) vectors — a genuine conflict
    conflicting: bool
    #: error triple of the first replica measured against the reference
    triple_a: ErrorTriple
    #: error triple of the second replica measured against the reference
    triple_b: ErrorTriple
    #: which replica id was chosen as the reference consistent state
    reference_id: str


def detect_conflict(vv_a: VersionVector, vv_b: VersionVector) -> bool:
    """The boolean core of ``detect(update)``: True when replicas differ.

    Per Section 4.3, "two replicas are inconsistent if their version vectors
    are different" — this includes the comparable (stale-but-ordered) case,
    not only concurrent writes.
    """
    return vv_a.compare(vv_b) is not Ordering.EQUAL


def choose_reference(id_a: str, vec_a: ExtendedVersionVector,
                     id_b: str, vec_b: ExtendedVersionVector) -> Tuple[str, ExtendedVersionVector]:
    """Choose the reference consistent state between two replicas.

    If one vector dominates the other, the dominating one is the natural
    reference (it already contains every update).  When the vectors are
    concurrent the paper's example rule applies: the replica with the higher
    ID value wins ("IDEA will choose b (b > a)").
    """
    ordering = vec_a.compare(vec_b)
    if ordering is Ordering.AFTER:
        return id_a, vec_a
    if ordering is Ordering.BEFORE:
        return id_b, vec_b
    if ordering is Ordering.EQUAL:
        # Either works; keep the rule deterministic.
        return (id_a, vec_a) if id_a >= id_b else (id_b, vec_b)
    return (id_a, vec_a) if id_a > id_b else (id_b, vec_b)


def compare_extended(id_a: str, vec_a: ExtendedVersionVector,
                     id_b: str, vec_b: ExtendedVersionVector) -> ConflictReport:
    """Full pairwise comparison: ordering, conflict flag and error triples."""
    ordering = vec_a.compare(vec_b)
    reference_id, reference_vec = choose_reference(id_a, vec_a, id_b, vec_b)
    triple_a = vec_a.error_triple_against(reference_vec)
    triple_b = vec_b.error_triple_against(reference_vec)
    return ConflictReport(
        ordering=ordering,
        inconsistent=ordering is not Ordering.EQUAL,
        conflicting=ordering is Ordering.CONCURRENT,
        triple_a=triple_a,
        triple_b=triple_b,
        reference_id=reference_id,
    )


def merge_vectors(vectors: Sequence[ExtendedVersionVector], *,
                  consistent_time: Optional[float] = None) -> ExtendedVersionVector:
    """Merge any number of extended vectors into one consistent image.

    This is what the resolution initiator computes after collecting version
    information from every top-layer member: the union of all known updates.
    """
    if not vectors:
        raise ValueError("merge_vectors requires at least one vector")
    merged = vectors[0]
    for vec in vectors[1:]:
        merged = merged.merge(vec, consistent_time=consistent_time)
    if consistent_time is not None:
        merged = merged.with_consistent_time(consistent_time)
    return merged


def pairwise_conflicts(vectors: Iterable[Tuple[str, ExtendedVersionVector]]) -> List[Tuple[str, str]]:
    """Return all pairs of replica ids whose vectors are concurrent."""
    items = list(vectors)
    conflicts: List[Tuple[str, str]] = []
    for i, (id_a, vec_a) in enumerate(items):
        for id_b, vec_b in items[i + 1:]:
            if vec_a.compare(vec_b) is Ordering.CONCURRENT:
                conflicts.append((id_a, id_b))
    return conflicts
