"""Version-vector algebra.

IDEA detects inconsistency by exchanging *version vectors* (Parker et al.,
1983) among replicas and extends them (Section 4.4.1, Figure 5) with

* per-update timestamps,
* an application-supplied numerical meta-datum (e.g. sum of ASCII codes of
  recent white-board updates, or total sale price of a booking server), and
* the TACT-style ``<numerical error, order error, staleness>`` triple.

This subpackage provides both the classic vector
(:class:`~repro.versioning.version_vector.VersionVector`) and the extended
vector (:class:`~repro.versioning.extended_vector.ExtendedVersionVector`),
plus the comparison/merge algebra used by detection and resolution
(:mod:`repro.versioning.conflict`).
"""

from repro.versioning.version_vector import Ordering, VersionVector
from repro.versioning.extended_vector import (
    ErrorTriple,
    ExtendedVersionVector,
    TruncatedHistoryError,
    UpdateRecord,
    WriterBase,
)
from repro.versioning.writers import GLOBAL_WRITERS, WriterTable
from repro.versioning.conflict import (
    ConflictReport,
    compare_extended,
    detect_conflict,
    merge_vectors,
)

__all__ = [
    "Ordering",
    "VersionVector",
    "ErrorTriple",
    "ExtendedVersionVector",
    "TruncatedHistoryError",
    "UpdateRecord",
    "WriterBase",
    "GLOBAL_WRITERS",
    "WriterTable",
    "ConflictReport",
    "compare_extended",
    "detect_conflict",
    "merge_vectors",
]
