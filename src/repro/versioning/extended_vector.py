"""Extended version vectors (paper Section 4.4.1, Figures 4 and 5).

IDEA's extended version vector augments the classic per-writer update counts
with three extras:

1. **Per-update timestamps** — e.g. ``A:2(1, 2)`` means writer A's two
   updates happened at (node-local, NTP-bounded) times 1 and 2.  These are
   the basis of the *staleness* component of the error triple.
2. **A numerical application meta-datum** (the ``[5]`` column in Figure 5) —
   a quick summary of the replica's content whose gap between two replicas
   gives the *numerical error* (sum of ASCII codes for a white board; total
   sale price for the booking system).
3. **The TACT-style error triple** ``<numerical error, order error,
   staleness>`` — computed against a chosen *reference consistent state* and
   carried along with the vector.

The worked example of Figure 4 is reproduced verbatim in
``tests/test_extended_vector.py``.

Long runs add a fourth ingredient: a **checkpoint ⊕ tail layout**.  A
stable prefix of a writer's updates — updates known-received by every
replica (Parker et al.'s classic version-vector GC argument) — can be folded
into a per-writer :class:`WriterBase` summary ``(count, cumulative metadata,
last timestamp)``.  Every derived quantity the protocols consume (counts,
digests, error triples, merge outcomes) is a function of the base plus the
retained tail, so folding changes no observable behaviour while bounding
the records held in memory by the instability window.  Operations that
would need a *folded record itself* (pushing it to a replica that is behind
the checkpoint) raise :class:`TruncatedHistoryError` with a clear message.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.versioning.version_vector import Ordering, VersionVector


class TruncatedHistoryError(RuntimeError):
    """An operation needed update records already folded into a checkpoint."""


@dataclass(frozen=True)
class UpdateRecord:
    """A single write applied to a replica.

    Attributes
    ----------
    writer:
        Identity of the writer (node/user id).
    seq:
        The writer's sequence number for this update (1-based, strictly
        increasing per writer).
    timestamp:
        The writer's clock reading when the update was issued.
    metadata_delta:
        Contribution of this update to the replica's numerical meta-datum.
    payload:
        Opaque application content (white-board stroke, booking record, ...).
    """

    writer: str
    seq: int
    timestamp: float
    metadata_delta: float = 0.0
    payload: Any = None

    def key(self) -> Tuple[str, int]:
        """Unique identity of the update: (writer, per-writer sequence)."""
        return (self.writer, self.seq)


@dataclass(frozen=True)
class WriterBase:
    """Folded stable prefix of one writer's updates (seqs ``1..count``).

    Carries exactly what digests and triples need from the folded records:
    how many there were, their summed metadata deltas (folded in seq order,
    so the float result is bit-identical to an incremental fold over the
    records), and the latest issue timestamp among them.
    """

    count: int
    cum_metadata: float
    last_timestamp: float

    def fold(self, records: Sequence[UpdateRecord]) -> "WriterBase":
        """Extend this base by ``records`` (the next seqs, in order).

        Folding from the empty base seeds the timestamp from the first
        record, so the result equals a from-scratch ``sum``/``max`` over the
        records bit-for-bit — every digest/summary fold in the system goes
        through here and stays interchangeable with the unfolded form.
        """
        if not records:
            return self
        cum = self.cum_metadata
        if self.count == 0:
            first = records[0]
            cum += first.metadata_delta
            last = first.timestamp
            rest = records[1:]
        else:
            last = self.last_timestamp
            rest = records
        for record in rest:
            cum += record.metadata_delta
            if record.timestamp > last:
                last = record.timestamp
        return WriterBase(count=self.count + len(records), cum_metadata=cum,
                          last_timestamp=last)


#: the empty prefix — folding from it reproduces a from-scratch summary
WriterBase.EMPTY = WriterBase(count=0, cum_metadata=0.0, last_timestamp=0.0)


@dataclass(frozen=True)
class ErrorTriple:
    """The ``<numerical error, order error, staleness>`` triple."""

    numerical: float = 0.0
    order: float = 0.0
    staleness: float = 0.0

    #: the all-zero triple (set right after the class definition)
    ZERO: ClassVar["ErrorTriple"]

    def __post_init__(self) -> None:
        if self.numerical < 0 or self.order < 0 or self.staleness < 0:
            raise ValueError(f"error components must be non-negative: {self}")

    def as_tuple(self) -> Tuple[float, float, float]:
        return (self.numerical, self.order, self.staleness)

    def max_with(self, other: "ErrorTriple") -> "ErrorTriple":
        return ErrorTriple(max(self.numerical, other.numerical),
                           max(self.order, other.order),
                           max(self.staleness, other.staleness))


ErrorTriple.ZERO = ErrorTriple(0.0, 0.0, 0.0)

_NO_BASES: Dict[str, WriterBase] = {}


class ExtendedVersionVector:
    """Immutable extended version vector in checkpoint ⊕ tail layout.

    Instances are value objects: :meth:`apply` and :meth:`merge` return new
    vectors.  A replica's current vector lives in
    :class:`repro.store.replica.Replica`.  With no checkpoint (the default)
    the layout degenerates to the classic all-records form.
    """

    __slots__ = ("_updates", "_base", "_metadata", "_last_consistent_time",
                 "_triple", "_counts_cache", "_keys_cache", "_latest_cache",
                 "_hash_cache", "_total_cache")

    def __init__(self, updates: Mapping[str, Tuple[UpdateRecord, ...]] | None = None,
                 metadata: float = 0.0, last_consistent_time: float = 0.0,
                 triple: ErrorTriple = ErrorTriple.ZERO,
                 base: Mapping[str, WriterBase] | None = None) -> None:
        bases: Dict[str, WriterBase] = dict(base) if base else _NO_BASES
        cleaned: Dict[str, Tuple[UpdateRecord, ...]] = {}
        if updates:
            for writer, records in updates.items():
                records = tuple(sorted(records, key=lambda r: r.seq))
                if not records:
                    continue
                seqs = [r.seq for r in records]
                if len(set(seqs)) != len(seqs):
                    raise ValueError(f"duplicate sequence numbers for writer {writer!r}")
                if any(r.writer != writer for r in records):
                    raise ValueError("update record writer does not match map key")
                start = bases[writer].count if writer in bases else 0
                if start and seqs != list(range(start + 1, start + 1 + len(seqs))):
                    raise ValueError(
                        f"tail for writer {writer!r} must continue its checkpoint "
                        f"(base count {start}, got seqs {seqs})")
                cleaned[writer] = records
        self._updates = cleaned
        self._base = bases
        self._metadata = float(metadata)
        self._last_consistent_time = float(last_consistent_time)
        self._triple = triple
        self._counts_cache: Optional[VersionVector] = None
        self._keys_cache: Optional[frozenset] = None
        self._latest_cache: Optional[float] = None
        self._hash_cache: Optional[int] = None
        self._total_cache: Optional[int] = None

    @classmethod
    def _from_trusted(cls, updates: Dict[str, Tuple[UpdateRecord, ...]],
                      metadata: float, last_consistent_time: float,
                      triple: ErrorTriple,
                      base: Dict[str, WriterBase] = _NO_BASES) -> "ExtendedVersionVector":
        """Build from an already-validated updates map without re-sorting.

        Internal fast path used by :meth:`apply` and the ``with_*`` copies:
        per-writer tuples are known to be non-empty, seq-contiguous (from
        ``base[writer].count + 1``) and sorted, so the O(total updates)
        validation pass of ``__init__`` is skipped.  The caller transfers
        ownership of ``updates`` (and ``base`` when given).
        """
        vector = cls.__new__(cls)
        vector._updates = updates
        vector._base = base
        vector._metadata = metadata
        vector._last_consistent_time = last_consistent_time
        vector._triple = triple
        vector._counts_cache = None
        vector._keys_cache = None
        vector._latest_cache = None
        vector._hash_cache = None
        vector._total_cache = None
        return vector

    # ----------------------------------------------------------- properties
    @property
    def metadata(self) -> float:
        """Current numerical meta-datum of the replica."""
        return self._metadata

    @property
    def last_consistent_time(self) -> float:
        """Last time point at which the replica was known to be consistent."""
        return self._last_consistent_time

    @property
    def triple(self) -> ErrorTriple:
        """Most recently attached error triple (zero until a comparison)."""
        return self._triple

    def counts(self) -> VersionVector:
        """Project onto a classic version vector of per-writer counts.

        Memoised per instance — vectors are immutable and the projection is
        taken on every digest comparison.  Counts include the checkpointed
        prefix: truncation never changes what this returns.
        """
        cached = self._counts_cache
        if cached is None:
            counts = {w: len(records) for w, records in self._updates.items()}
            for writer, base in self._base.items():
                counts[writer] = counts.get(writer, 0) + base.count
            cached = self._counts_cache = VersionVector._from_trusted(counts)
        return cached

    def count(self, writer: str) -> int:
        total = len(self._updates.get(writer, ()))
        base = self._base.get(writer)
        return total + base.count if base is not None else total

    def base_count(self, writer: str) -> int:
        """How many of ``writer``'s updates are folded into the checkpoint."""
        base = self._base.get(writer)
        return base.count if base is not None else 0

    def writer_base(self, writer: str) -> Optional[WriterBase]:
        return self._base.get(writer)

    def bases(self) -> Dict[str, WriterBase]:
        """The per-writer checkpoint bases (copy; empty when untruncated)."""
        return dict(self._base)

    def is_truncated(self) -> bool:
        return bool(self._base)

    def writers(self) -> Tuple[str, ...]:
        if not self._base:
            return tuple(sorted(self._updates))
        return tuple(sorted(set(self._updates) | set(self._base)))

    def updates_from(self, writer: str) -> Tuple[UpdateRecord, ...]:
        """The *retained* (tail) records of ``writer``, in seq order.

        For an untruncated vector this is the writer's full history; after a
        checkpoint it starts at ``base_count(writer) + 1``.
        """
        return self._updates.get(writer, ())

    def all_updates(self) -> List[UpdateRecord]:
        """Every retained update, ordered by timestamp then writer (stable)."""
        records = [r for recs in self._updates.values() for r in recs]
        return sorted(records, key=lambda r: (r.timestamp, r.writer, r.seq))

    def update_keys(self) -> frozenset:
        """Every retained ``(writer, seq)`` key (memoised; read-only)."""
        cached = self._keys_cache
        if cached is None:
            cached = self._keys_cache = frozenset(
                (r.writer, r.seq) for recs in self._updates.values() for r in recs)
        return cached

    def latest_update_time(self) -> float:
        """Timestamp of the most recent update known to this replica."""
        cached = self._latest_cache
        if cached is None:
            times = [r.timestamp for recs in self._updates.values() for r in recs]
            times.extend(b.last_timestamp for b in self._base.values())
            cached = self._latest_cache = (max(times) if times
                                           else self._last_consistent_time)
        return cached

    def total_updates(self) -> int:
        cached = self._total_cache
        if cached is None:
            cached = sum(len(recs) for recs in self._updates.values())
            cached += sum(b.count for b in self._base.values())
            self._total_cache = cached
        return cached

    # -------------------------------------------------------------- algebra
    def apply(self, record: UpdateRecord) -> "ExtendedVersionVector":
        """Apply a local or remote update and return the resulting vector.

        O(writers + window) instead of O(total updates): the per-writer
        tails are seq-contiguous above the base by invariant, so a duplicate
        is exactly a record whose seq does not exceed the writer's current
        count, and the new map can be built without re-validating every
        record.
        """
        existing = self._updates.get(record.writer, ())
        expected_seq = self.base_count(record.writer) + len(existing) + 1
        if record.seq != expected_seq:
            if 1 <= record.seq < expected_seq:
                return self  # duplicate delivery: idempotent
            raise ValueError(
                f"out-of-order update from {record.writer!r}: got seq {record.seq}, "
                f"expected {expected_seq}")
        updates = dict(self._updates)
        updates[record.writer] = existing + (record,)
        return ExtendedVersionVector._from_trusted(
            updates,
            metadata=self._metadata + record.metadata_delta,
            last_consistent_time=self._last_consistent_time,
            triple=self._triple, base=self._base)

    def truncate_to(self, frontier: Mapping[str, int]) -> "ExtendedVersionVector":
        """Fold each writer's prefix up to ``frontier[writer]`` into the base.

        ``frontier`` counts beyond a writer's current count are clamped;
        counts at or below the current base are no-ops.  Everything derived
        from the vector (counts, digests, triples, merge results) is
        unchanged — only the retained records shrink.
        """
        new_base: Optional[Dict[str, WriterBase]] = None
        new_updates: Optional[Dict[str, Tuple[UpdateRecord, ...]]] = None
        for writer, target in frontier.items():
            current_base = self._base.get(writer, WriterBase.EMPTY)
            tail = self._updates.get(writer, ())
            target = min(int(target), current_base.count + len(tail))
            fold_n = target - current_base.count
            if fold_n <= 0:
                continue
            if new_base is None:
                new_base = dict(self._base)
                new_updates = dict(self._updates)
            new_base[writer] = current_base.fold(tail[:fold_n])
            remaining = tail[fold_n:]
            if remaining:
                new_updates[writer] = remaining
            else:
                new_updates.pop(writer, None)
        if new_base is None:
            return self
        return ExtendedVersionVector._from_trusted(
            new_updates, metadata=self._metadata,
            last_consistent_time=self._last_consistent_time,
            triple=self._triple, base=new_base)

    def merge(self, other: "ExtendedVersionVector",
              consistent_time: Optional[float] = None) -> "ExtendedVersionVector":
        """Union of the update sets of both replicas (resolution outcome).

        The merged metadata is recomputed from the union of updates so it
        stays consistent with the update history, and the error triple is
        reset to zero — after a resolution both replicas are consistent.
        With checkpoints the union is taken per writer over ``max(base) ⊕
        tails``; folded prefixes are identical everywhere by the stability
        invariant, so the higher base subsumes the lower side's records.
        """
        new_time = consistent_time
        if new_time is None:
            new_time = max(self._last_consistent_time, other._last_consistent_time)
        if self._base or other._base:
            return self._merge_with_bases(other, new_time)
        # Fast path: one side already contains every update of the other
        # (per-writer tuples are seq-contiguous, so a >= length prefix-match
        # is containment).  Reuse that side's updates map; the metadata is
        # still recomputed from the union exactly like the general path, so
        # the result is bit-identical either way.
        mine = self._updates
        theirs = other._updates
        dominant: Optional[Dict[str, Tuple[UpdateRecord, ...]]] = None
        contiguous = all(recs[-1].seq == len(recs)
                         for recs in mine.values()) and all(
                             recs[-1].seq == len(recs) for recs in theirs.values())
        if contiguous:
            if all(len(mine.get(w, ())) >= len(recs) for w, recs in theirs.items()):
                dominant = mine
            elif all(len(theirs.get(w, ())) >= len(recs) for w, recs in mine.items()):
                dominant = theirs
        if dominant is not None:
            metadata = sum(r.metadata_delta
                           for recs in dominant.values() for r in recs)
            return ExtendedVersionVector._from_trusted(
                dict(dominant), metadata=metadata,
                last_consistent_time=new_time, triple=ErrorTriple.ZERO)

        updates: Dict[str, Tuple[UpdateRecord, ...]] = {}
        for writer in set(mine) | set(theirs):
            my_recs = {r.seq: r for r in mine.get(writer, ())}
            their_recs = {r.seq: r for r in theirs.get(writer, ())}
            merged = dict(their_recs)
            merged.update(my_recs)  # identical keys should carry identical records
            seqs = sorted(merged)
            if seqs != list(range(1, len(seqs) + 1)):
                raise ValueError(
                    f"cannot merge: missing intermediate updates for writer {writer!r}")
            updates[writer] = tuple(merged[s] for s in seqs)
        metadata = sum(r.metadata_delta
                       for recs in updates.values() for r in recs)
        return ExtendedVersionVector(updates=updates, metadata=metadata,
                                     last_consistent_time=new_time,
                                     triple=ErrorTriple.ZERO)

    def _merge_with_bases(self, other: "ExtendedVersionVector",
                          new_time: float) -> "ExtendedVersionVector":
        """General merge when at least one side carries a checkpoint."""
        bases: Dict[str, WriterBase] = {}
        updates: Dict[str, Tuple[UpdateRecord, ...]] = {}
        metadata = 0.0
        for writer in sorted(set(self._updates) | set(self._base)
                             | set(other._updates) | set(other._base)):
            my_base = self._base.get(writer, WriterBase.EMPTY)
            their_base = other._base.get(writer, WriterBase.EMPTY)
            base = my_base if my_base.count >= their_base.count else their_base
            merged = {r.seq: r for r in other._updates.get(writer, ())
                      if r.seq > base.count}
            for r in self._updates.get(writer, ()):
                if r.seq > base.count:
                    merged[r.seq] = r
            seqs = sorted(merged)
            if seqs != list(range(base.count + 1, base.count + 1 + len(seqs))):
                raise ValueError(
                    f"cannot merge: missing intermediate updates for writer "
                    f"{writer!r} (checkpoint count {base.count}, tail seqs {seqs})")
            tail = tuple(merged[s] for s in seqs)
            if base.count:
                bases[writer] = base
            if tail:
                updates[writer] = tail
            metadata += base.cum_metadata
            for r in tail:
                metadata += r.metadata_delta
        return ExtendedVersionVector._from_trusted(
            updates, metadata=metadata, last_consistent_time=new_time,
            triple=ErrorTriple.ZERO, base=bases if bases else _NO_BASES)

    def with_triple(self, triple: ErrorTriple) -> "ExtendedVersionVector":
        """Attach a freshly computed error triple (Figure 4(d))."""
        return ExtendedVersionVector._from_trusted(
            self._updates, metadata=self._metadata,
            last_consistent_time=self._last_consistent_time, triple=triple,
            base=self._base)

    def with_consistent_time(self, time: float) -> "ExtendedVersionVector":
        """Mark the replica as consistent as of ``time`` (post-resolution)."""
        return ExtendedVersionVector._from_trusted(
            self._updates, metadata=self._metadata,
            last_consistent_time=float(time), triple=ErrorTriple.ZERO,
            base=self._base)

    # ------------------------------------------------------------ comparison
    def compare(self, other: "ExtendedVersionVector") -> Ordering:
        """Compare using the classic count projection."""
        return self.counts().compare(other.counts())

    def missing_from(self, other: "ExtendedVersionVector") -> List[UpdateRecord]:
        """Updates known here but absent from ``other`` (what to push).

        Served per writer from the seq-contiguous tails in O(missing):
        ``other`` lacks exactly the records above its per-writer count.
        Raises :class:`TruncatedHistoryError` when a needed record was
        folded into this vector's checkpoint — the peer is behind the
        stability frontier and can only be repaired by checkpoint adoption
        (:meth:`repro.store.replica.Replica.install_merged`).
        """
        missing: List[UpdateRecord] = []
        for writer in (set(self._updates) | set(self._base)
                       if self._base else self._updates):
            tail = self._updates.get(writer, ())
            have = other.count(writer)
            base_count = self.base_count(writer)
            if have >= base_count + len(tail):
                continue
            if have < base_count:
                raise TruncatedHistoryError(
                    f"peer knows only {have} updates of writer {writer!r} but "
                    f"seqs 1..{base_count} were folded into this replica's "
                    f"checkpoint; records below the stability frontier are "
                    f"no longer individually available")
            missing.extend(tail[have - base_count:])
        missing.sort(key=lambda r: (r.timestamp, r.writer, r.seq))
        return missing

    def error_triple_against(self, reference: "ExtendedVersionVector") -> ErrorTriple:
        """Compute ``<numerical, order, staleness>`` against a reference state.

        Following the paper's worked example (Figure 4(d)):

        * numerical error — absolute gap between the two meta-data values,
        * order error — total per-writer count gap in both directions
          ("misses one update and has two extra ones ⇒ order error 3"),
        * staleness — gap between the reference's most recent update time and
          the last time point at which this replica was consistent.
        """
        numerical = abs(self._metadata - reference._metadata)
        order = float(self.counts().order_distance(reference.counts()))
        staleness = max(0.0, reference.latest_update_time() - self._last_consistent_time)
        return ErrorTriple(numerical=numerical, order=order, staleness=staleness)

    # ------------------------------------------------------------- pickling
    def __reduce__(self):
        """Pickle content fields only, dropping every memoised cache.

        ``_counts_cache`` holds a :class:`VersionVector` whose own ``dense()``
        cache indexes the process-local ``GLOBAL_WRITERS`` table, so default
        ``__slots__`` pickling would smuggle one process's interning order
        into another (see ``VersionVector.__reduce__``).  Rebuilding from the
        five content fields keeps cross-process transfer — ``repro.shard``
        IPC — independent of either side's interning history.
        """
        return (_restore_extended,
                (self._updates, self._base, self._metadata,
                 self._last_consistent_time, self._triple))

    # -------------------------------------------------------------- dunder
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExtendedVersionVector):
            return NotImplemented
        return (self._updates == other._updates
                and self._base == other._base
                and self._metadata == other._metadata)

    def __hash__(self) -> int:
        cached = self._hash_cache
        if cached is None:
            cached = self._hash_cache = hash(
                (tuple(sorted((w, tuple(r.key() for r in recs))
                              for w, recs in self._updates.items())),
                 tuple(sorted(self._base.items())),
                 self._metadata))
        return cached

    def __repr__(self) -> str:
        parts = []
        for writer in self.writers():
            recs = self._updates.get(writer, ())
            base = self._base.get(writer)
            times = ", ".join(f"{r.timestamp:g}" for r in recs)
            prefix = f"⊕{base.count}" if base is not None else ""
            parts.append(f"{writer}:{self.count(writer)}{prefix}({times})")
        t = self._triple
        return (f"<EVV {' '.join(parts) or 'empty'} [{self._metadata:g}] "
                f"<{t.numerical:g},{t.order:g},{t.staleness:g}>>")

    # --------------------------------------------------------- construction
    @classmethod
    def from_updates(cls, records: Iterable[UpdateRecord], *,
                     last_consistent_time: float = 0.0) -> "ExtendedVersionVector":
        """Build a vector by applying records grouped per writer in seq order."""
        vector = cls(last_consistent_time=last_consistent_time)
        grouped: Dict[str, List[UpdateRecord]] = {}
        for record in records:
            grouped.setdefault(record.writer, []).append(record)
        # Apply per writer in sequence order; interleave writers deterministically.
        for writer in sorted(grouped):
            for record in sorted(grouped[writer], key=lambda r: r.seq):
                vector = vector.apply(record)
        return vector


def _restore_extended(updates, base, metadata, last_consistent_time,
                      triple) -> ExtendedVersionVector:
    """Pickle reconstructor: rebuild from content fields with empty caches."""
    return ExtendedVersionVector._from_trusted(
        updates, metadata=metadata, last_consistent_time=last_consistent_time,
        triple=triple, base=base)
