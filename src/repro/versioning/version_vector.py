"""Classic version vectors (Parker et al., 1983).

A version vector maps each writer identity to the number of updates that
writer has applied to a replica.  Two replicas are consistent exactly when
their vectors are equal; a vector *dominates* another when it has seen at
least as many updates from every writer; two vectors that do not dominate
each other are *concurrent* (the replicas conflict and, per Section 4.5.1 of
the paper, a resolution policy must decide the outcome).
"""

from __future__ import annotations

import enum
from operator import ge as _ge, sub as _sub
from typing import Dict, Iterable, Iterator, Mapping, Tuple

from repro.versioning.writers import GLOBAL_WRITERS


class Ordering(enum.Enum):
    """Outcome of comparing two version vectors."""

    EQUAL = "equal"
    BEFORE = "before"        # self < other: other dominates
    AFTER = "after"          # self > other: self dominates
    CONCURRENT = "concurrent"  # incomparable: conflicting updates

    @property
    def comparable(self) -> bool:
        """True when the two vectors are ordered (u < v, u = v or u > v)."""
        return self is not Ordering.CONCURRENT


class VersionVector:
    """An immutable mapping from writer id to update count.

    Zero entries are normalised away so that ``VersionVector({"A": 0}) ==
    VersionVector()``; this keeps equality and hashing well defined as
    writers join over time.
    """

    __slots__ = ("_counts", "_hash", "_total", "_dense")

    def __init__(self, counts: Mapping[str, int] | None = None) -> None:
        cleaned: Dict[str, int] = {}
        if counts:
            for writer, count in counts.items():
                if count < 0:
                    raise ValueError(f"negative update count for {writer!r}: {count}")
                if count > 0:
                    cleaned[str(writer)] = int(count)
        self._counts: Dict[str, int] = cleaned
        self._hash: int | None = None
        self._total: int | None = None
        self._dense: Tuple[int, ...] | None = None

    @classmethod
    def _from_trusted(cls, counts: Dict[str, int]) -> "VersionVector":
        """Wrap an already-validated counts dict without copying or checks.

        Internal fast path: the caller guarantees every count is a positive
        int keyed by str and transfers ownership of the dict.
        """
        vector = cls.__new__(cls)
        vector._counts = counts
        vector._hash = None
        vector._total = None
        vector._dense = None
        return vector

    # ----------------------------------------------------------- inspection
    def count(self, writer: str) -> int:
        """Number of updates from ``writer`` reflected in this vector."""
        return self._counts.get(writer, 0)

    def writers(self) -> Tuple[str, ...]:
        return tuple(sorted(self._counts))

    def total_updates(self) -> int:
        """Total number of updates across all writers (cached; immutable)."""
        total = self._total
        if total is None:
            total = self._total = sum(self._counts.values())
        return total

    def dense(self) -> Tuple[int, ...]:
        """Array projection indexed by the interned writer id (memoised).

        ``dense()[wid]`` is the count of the writer with
        :data:`~repro.versioning.writers.GLOBAL_WRITERS` id ``wid``; the
        tuple is truncated after the highest id present, so its last element
        is always positive.  Comparisons over two projections run as C-level
        ``map``/``all``/``sum`` passes instead of per-writer dict walks.
        """
        dense = self._dense
        if dense is None:
            counts = self._counts
            if not counts:
                dense = self._dense = ()
            else:
                intern = GLOBAL_WRITERS.intern
                ids = {intern(w): c for w, c in counts.items()}
                arr = [0] * (1 + max(ids))
                for wid, count in ids.items():
                    arr[wid] = count
                dense = self._dense = tuple(arr)
        return dense

    def items(self) -> Iterator[Tuple[str, int]]:
        return iter(sorted(self._counts.items()))

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._counts))

    def __len__(self) -> int:
        return len(self._counts)

    def __bool__(self) -> bool:
        return bool(self._counts)

    # ------------------------------------------------------------- mutation
    def increment(self, writer: str, amount: int = 1) -> "VersionVector":
        """Return a new vector with ``writer``'s count increased."""
        if amount < 0:
            raise ValueError("amount must be non-negative")
        if amount == 0:
            return self  # immutable: a zero increment is the same vector
        counts = dict(self._counts)
        counts[str(writer)] = counts.get(writer, 0) + int(amount)
        return VersionVector._from_trusted(counts)

    def merge(self, other: "VersionVector") -> "VersionVector":
        """Pointwise maximum — the least vector dominating both inputs.

        When one vector already dominates the other, the dominating instance
        is returned as-is (vectors are immutable, so sharing is safe).
        """
        ordering = self.compare(other)
        if ordering is Ordering.EQUAL or ordering is Ordering.AFTER:
            return self
        if ordering is Ordering.BEFORE:
            return other
        counts = dict(self._counts)
        get = counts.get
        for writer, count in other._counts.items():
            if count > get(writer, 0):
                counts[writer] = count
        return VersionVector._from_trusted(counts)

    # ------------------------------------------------------------ comparison
    def compare(self, other: "VersionVector") -> Ordering:
        """Classify the relationship between two vectors.

        Runs over the dense id-indexed projections: domination in either
        direction is one C-level ``all(map(ge, ...))`` pass (``map`` stops at
        the shorter tuple; the longer side trivially dominates the indices
        the shorter one lacks, because its own trailing entry is positive).
        """
        if self._counts == other._counts:
            return Ordering.EQUAL
        a = self.dense()
        b = other.dense()
        if len(a) >= len(b) and all(map(_ge, a, b)):
            return Ordering.AFTER
        if len(b) >= len(a) and all(map(_ge, b, a)):
            return Ordering.BEFORE
        return Ordering.CONCURRENT

    def dominates(self, other: "VersionVector") -> bool:
        """True if this vector has seen every update the other has."""
        a = self.dense()
        b = other.dense()
        return len(a) >= len(b) and all(map(_ge, a, b))

    def concurrent_with(self, other: "VersionVector") -> bool:
        return self.compare(other) is Ordering.CONCURRENT

    def difference(self, other: "VersionVector") -> Dict[str, int]:
        """Per-writer updates present here but missing from ``other``."""
        out: Dict[str, int] = {}
        for writer in set(self._counts) | set(other._counts):
            gap = self.count(writer) - other.count(writer)
            if gap > 0:
                out[writer] = gap
        return out

    def order_distance(self, other: "VersionVector") -> int:
        """Total update-count gap in both directions.

        This is the paper's *order error* between two plain vectors: in the
        worked example of Figure 4, replica ``a`` "misses one update and has
        two extra ones, so the order error is 3".
        """
        a = self.dense()
        b = other.dense()
        # |a[i] - b[i]| over the shared prefix (map stops at the shorter
        # tuple) plus whatever the longer tail contributes one-sidedly.
        distance = sum(map(abs, map(_sub, a, b)))
        if len(a) > len(b):
            distance += sum(a[len(b):])
        elif len(b) > len(a):
            distance += sum(b[len(a):])
        return distance

    # ------------------------------------------------------------ pickling
    def __reduce__(self):
        """Pickle the counts only, never the memoised caches.

        ``dense()`` memoises a projection indexed by the *process-local*
        :data:`~repro.versioning.writers.GLOBAL_WRITERS` interning order.
        Default ``__slots__`` pickling would carry that projection across a
        process boundary — e.g. inside a ``repro.shard`` cross-shard message
        — where the receiving process's table may have interned writers in a
        different order.  Reconstructing from the counts alone makes every
        unpickled vector re-derive its caches against the local table.
        """
        return (_restore_vector, (self._counts,))

    # ------------------------------------------------------------- dunder
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VersionVector):
            return NotImplemented
        return self._counts == other._counts

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            cached = self._hash = hash(tuple(sorted(self._counts.items())))
        return cached

    def __repr__(self) -> str:
        inner = " ".join(f"{w}:{c}" for w, c in sorted(self._counts.items()))
        return f"<VV {inner or 'empty'}>"

    # ------------------------------------------------------------ construction
    @classmethod
    def from_items(cls, items: Iterable[Tuple[str, int]]) -> "VersionVector":
        return cls(dict(items))


def _restore_vector(counts: Dict[str, int]) -> VersionVector:
    """Pickle reconstructor: rebuild from plain counts with empty caches."""
    return VersionVector._from_trusted(counts)
