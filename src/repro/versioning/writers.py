"""Dense writer-id interning.

Version vectors are keyed by writer identity strings.  Every comparison in
the detection inner loop therefore walks a ``str -> int`` dict, paying
string hashing and per-entry bytecode for what is conceptually an array
compare.  This module assigns each writer string a small dense integer id,
process-wide, so vectors can memoise an array projection (``counts[id]``)
and run compare/dominate/order-distance as C-speed ``map``/``all`` passes
over tuples (see :meth:`repro.versioning.version_vector.VersionVector.dense`).

Ids are assigned in first-intern order.  Nothing observable depends on the
numbering — it only indexes the private dense projections — so sharing one
table across deployments in a process is safe, and simulation determinism is
unaffected by how many runs preceded the current one.

Cost caveat: a dense projection spans ``0..max interned id present in the
vector``, so a process that interleaves deployments with *disjoint* writer
name sets gives later vectors high ids and zero-padded projections.  The
repo's topologies reuse the same node-name pattern across deployments, so
ids collide back to the same small range in practice; the global table is
what keeps memoised projections from different vectors index-compatible.
If a workload ever needs isolation, build a private :class:`WriterTable`
and thread it through — the algebra only assumes one shared index space
per comparison.
"""

from __future__ import annotations

from typing import Dict, List


class WriterTable:
    """Bidirectional ``writer string <-> dense int id`` table."""

    __slots__ = ("_ids", "_names")

    def __init__(self) -> None:
        self._ids: Dict[str, int] = {}
        self._names: List[str] = []

    def intern(self, writer: str) -> int:
        """Return the writer's dense id, assigning the next one if new."""
        wid = self._ids.get(writer)
        if wid is None:
            wid = self._ids[writer] = len(self._names)
            self._names.append(writer)
        return wid

    def id_of(self, writer: str) -> int:
        """The writer's id; raises KeyError when never interned."""
        return self._ids[writer]

    def name_of(self, wid: int) -> str:
        return self._names[wid]

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, writer: str) -> bool:
        return writer in self._ids


#: process-wide default table; vectors intern through this unless a caller
#: builds a private table for isolation (tests do, to pin id assignment)
GLOBAL_WRITERS = WriterTable()
