"""``repro.worlds`` — declarative world descriptions for whole deployments.

A *world* is one versioned JSON document composing everything a deployment
scenario needs: a named-site topology with heterogeneous links (tiers,
explicit overrides, per-link loss), object placement with top-layer
policies, client traffic bound to regions, and a fault schedule (including
correlated failures: site blasts, cascading churn).  The committed catalog
(``repro/worlds/catalog/``) holds graded scale suites and stress worlds,
each pinning a replay fingerprint the regression gate checks.

Typical use::

    from repro.worlds import build_world, load_world, world_fingerprint

    deployment = build_world("wan-40", seed=11)
    deployment.run(until=10.0)
    print(world_fingerprint(deployment))

or from the shell::

    python -m repro.worlds --list
    python -m repro.worlds --validate
    python -m repro.worlds --run edge-lossy --json -
    python -m repro.experiments --run world_matrix --world wan-20 --jobs 2
"""

from repro.worlds.compile import (WorldPass, build_world, compile_fault_plan,
                                  compile_populations, compile_topology,
                                  link_profiles, world_fingerprint)
from repro.worlds.errors import (WorldError, WorldNotFoundError,
                                 WorldValidationError)
from repro.worlds.loader import (CATALOG_DIR, catalog_names, catalog_path,
                                 load_catalog, load_world, load_world_file)
from repro.worlds.model import World, WORLD_VERSION
from repro.worlds.runner import WorldRunResult, run_world_point
from repro.worlds.schema import parse_world

__all__ = [
    "CATALOG_DIR",
    "World",
    "WORLD_VERSION",
    "WorldError",
    "WorldNotFoundError",
    "WorldPass",
    "WorldRunResult",
    "WorldValidationError",
    "build_world",
    "catalog_names",
    "catalog_path",
    "compile_fault_plan",
    "compile_populations",
    "compile_topology",
    "link_profiles",
    "load_catalog",
    "load_world",
    "load_world_file",
    "parse_world",
    "run_world_point",
    "world_fingerprint",
]
