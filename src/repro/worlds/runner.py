"""Run one world end-to-end: the farm-safe point function.

:func:`run_world_point` is a plain module-level function (importable by
``"repro.worlds.runner:run_world_point"``), so the ``fig_world_matrix``
sweep can fan catalog worlds over farm worker processes — each worker
re-loads the named world from the committed catalog, builds it, runs it to
its horizon and returns a small picklable result carrying the fingerprint.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.worlds.compile import build_world, world_fingerprint
from repro.worlds.loader import load_world
from repro.worlds.model import World


@dataclass
class WorldRunResult:
    """One finished world run: identity, horizon and its fingerprint."""

    world: str
    seed: int
    horizon: float
    num_nodes: int
    num_sites: int
    num_objects: int
    fingerprint: Dict[str, object] = field(default_factory=dict)
    final_alive: int = 0
    drop_reasons: Dict[str, int] = field(default_factory=dict)
    #: wall-clock seconds (machine-dependent; never part of the fingerprint)
    wall_seconds: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "world": self.world,
            "seed": self.seed,
            "horizon_s": self.horizon,
            "num_nodes": self.num_nodes,
            "num_sites": self.num_sites,
            "num_objects": self.num_objects,
            "fingerprint": dict(self.fingerprint),
            "final_alive": self.final_alive,
            "drop_reasons": dict(self.drop_reasons),
            "wall_seconds": round(self.wall_seconds, 3),
        }


def run_world_point(*, world: str, seed: Optional[int] = None,
                    duration: Optional[float] = None) -> WorldRunResult:
    """Load, build and run one world; harvest its fingerprint.

    ``world`` is a catalog name or a ``*.json`` path (a string either way,
    so the spec pickles); ``seed``/``duration`` default to the world's
    ``defaults`` block.
    """
    wall_start = time.perf_counter()
    spec: World = load_world(world)
    if seed is None:
        seed = spec.default_seed
    if duration is None:
        duration = spec.default_duration
    deployment = build_world(spec, seed, duration=duration)
    deployment.run(until=duration)
    return WorldRunResult(
        world=spec.name,
        seed=seed,
        horizon=duration,
        num_nodes=spec.num_nodes,
        num_sites=len(spec.topology.sites),
        num_objects=len(spec.objects),
        fingerprint=world_fingerprint(deployment),
        final_alive=len(deployment.alive_node_ids()),
        drop_reasons=dict(deployment.network.stats.drop_reasons),
        wall_seconds=time.perf_counter() - wall_start,
    )
