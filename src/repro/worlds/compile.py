"""Compile a validated :class:`World` into a runnable deployment.

Each section of the document maps onto one existing subsystem:

* **topology** → :class:`~repro.sim.topology.Topology` (named sites, nodes
  ``<site>-<i>``) plus a :class:`~repro.sim.latency.HeterogeneousLatencyModel`
  whose per-site-pair :class:`~repro.sim.latency.LinkProfile`\\ s realise the
  tiers and explicit link overrides;
* **placement** → ``DeploymentBuilder.add_object`` calls with compiled
  :class:`~repro.core.config.IdeaConfig`\\ s and static top layers;
* **traffic** → :class:`~repro.workloads.clients.ClientPopulation` specs with
  home nodes resolved from regions/sites;
* **faults** → one merged :class:`~repro.scenarios.FaultPlan` (generator
  seeds derived deterministically from the run seed);
* per-link **loss** and standalone fault arming ride the builder's
  ``add_pass`` seam as a :class:`WorldPass`, so ``build_world(world, seed)``
  returns a ready :class:`~repro.core.deployment.IdeaDeployment`.

:func:`world_fingerprint` reduces a finished run to the counter set the
catalog pins — built on the shard subsystem's canonical replica lines, so
the hash is a function of replica content only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.core.config import (AdaptationMode, ConsistencyMetricSpec,
                               IdeaConfig, MetricWeights, ResolutionStrategy)
from repro.core.deployment import DeploymentBuilder, IdeaDeployment
from repro.scenarios import FaultInjector, FaultPlan
from repro.shard.state import collect_shard_state, state_fingerprint
from repro.sim.latency import HeterogeneousLatencyModel, LinkProfile
from repro.sim.topology import Site, Topology
from repro.workloads.clients import ClientPopulation, OpMix
from repro.workloads.phases import (ConstantRate, DiurnalRate, FlashCrowdRate,
                                    RampRate, RateSchedule)
from repro.workloads.popularity import (PopularityModel, RotatingHotspot,
                                        UniformPopularity, ZipfPopularity)
from repro.worlds.loader import load_world
from repro.worlds.model import (ObjectSpec, PopulationSpec, TierSpec,
                                TopologySpec, World)

#: multiplier separating per-fault generator seeds from the run seed; any
#: odd prime works — it only needs to be fixed so (world, seed) replays
FAULT_SEED_STRIDE = 7919


# ----------------------------------------------------------------- topology

def compile_topology(world: World) -> Topology:
    """Sites and ``<site>-<i>`` node ids in the document's listed order."""
    spec = world.topology
    sites = {s.name: Site(s.name, s.x, s.y) for s in spec.sites}
    node_ids: List[str] = []
    node_site: Dict[str, str] = {}
    for site in spec.sites:
        for node_id in site.node_ids():
            node_ids.append(node_id)
            node_site[node_id] = site.name
    return Topology(node_ids=node_ids, sites=sites, node_site=node_site)


def _combine_tiers(a: Optional[TierSpec],
                   b: Optional[TierSpec]) -> Optional[LinkProfile]:
    """Fold the two endpoints' tiers into one link profile (or None)."""
    if a is None and b is None:
        return None
    scale = (a.latency_scale if a else 1.0) * (b.latency_scale if b else 1.0)
    sigmas = [t.jitter_sigma for t in (a, b)
              if t is not None and t.jitter_sigma is not None]
    loss = 1.0 - ((1.0 - (a.loss if a else 0.0))
                  * (1.0 - (b.loss if b else 0.0)))
    profile = LinkProfile(latency_scale=scale,
                          jitter_sigma=max(sigmas) if sigmas else None,
                          loss=loss)
    if (profile.latency_scale == 1.0 and profile.jitter_sigma is None
            and profile.loss == 0.0):
        return None
    return profile


def link_profiles(spec: TopologySpec) -> Dict[Tuple[str, str], LinkProfile]:
    """(unordered site pair) -> LinkProfile from tiers + explicit links.

    Tiers shape every inter-site link incident on their member sites
    (endpoint tiers compose); an explicit ``links`` entry *replaces* the
    tier-derived profile for its pair.
    """
    profiles: Dict[Tuple[str, str], LinkProfile] = {}
    names = [s.name for s in spec.sites]
    tier_of = {s.name: spec.tiers[s.tier] for s in spec.sites
               if s.tier is not None}
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            profile = _combine_tiers(tier_of.get(a), tier_of.get(b))
            if profile is not None:
                profiles[(a, b) if a <= b else (b, a)] = profile
    for link in spec.links:
        a, b = link.between
        key = (a, b) if a <= b else (b, a)
        profiles[key] = LinkProfile(
            latency=link.latency,
            latency_scale=(link.latency_scale if link.latency_scale is not None
                           else 1.0),
            jitter_sigma=link.jitter_sigma,
            loss=link.loss)
    return profiles


def compile_latency(world: World,
                    topology: Topology) -> HeterogeneousLatencyModel:
    spec = world.topology
    return HeterogeneousLatencyModel(
        topology, link_profiles(spec),
        jitter_sigma=spec.jitter_sigma, min_jitter=spec.min_jitter)


# ---------------------------------------------------------------- placement

def compile_config(raw: Dict[str, object]) -> IdeaConfig:
    kwargs: Dict[str, object] = {}
    if "mode" in raw:
        kwargs["mode"] = AdaptationMode(raw["mode"])
    for key in ("hint_level", "hint_delta"):
        if key in raw:
            kwargs[key] = float(raw[key])  # type: ignore[arg-type]
    if "background_period" in raw:
        period = raw["background_period"]
        kwargs["background_period"] = None if period is None else float(period)  # type: ignore[arg-type]
    if "resolution_strategy" in raw:
        kwargs["resolution_strategy"] = ResolutionStrategy(
            raw["resolution_strategy"])
    if "weights" in raw:
        w: Dict[str, float] = dict(raw["weights"])  # type: ignore[arg-type]
        default = 1.0 / 3.0
        kwargs["weights"] = MetricWeights(
            numerical=w.get("numerical", default),
            order=w.get("order", default),
            staleness=w.get("staleness", default))
    if "metric" in raw:
        m: Dict[str, float] = dict(raw["metric"])  # type: ignore[arg-type]
        kwargs["metric"] = ConsistencyMetricSpec(
            max_numerical=m.get("max_numerical", 60.0),
            max_order=m.get("max_order", 60.0),
            max_staleness=m.get("max_staleness", 60.0))
    return IdeaConfig(**kwargs)  # type: ignore[arg-type]


def resolve_top_layer(spec: ObjectSpec,
                      world: World) -> Optional[List[str]]:
    """Static top-layer node ids, or None for the dynamic overlay.

    The site form pins the *first* node of each listed site — the paper's
    "writers carefully chosen so that they are far apart" pattern without
    naming individual nodes.
    """
    if spec.top_layer_nodes is not None:
        return list(spec.top_layer_nodes)
    if spec.top_layer_sites is not None:
        return [f"{site}-0" for site in spec.top_layer_sites]
    return None


# ------------------------------------------------------------------ traffic

def _popularity(raw: Dict[str, object], num_objects: int) -> PopularityModel:
    kind = raw["kind"]
    if kind == "uniform":
        return UniformPopularity(num_objects)
    if kind == "zipf":
        return ZipfPopularity(num_objects, skew=float(raw.get("skew", 0.99)))  # type: ignore[arg-type]
    return RotatingHotspot(
        num_objects, rotate_period=float(raw["rotate_period"]),  # type: ignore[arg-type]
        hot_weight=float(raw.get("hot_weight", 0.5)))  # type: ignore[arg-type]


def _schedule(raw: Dict[str, object]) -> RateSchedule:
    kind = raw["kind"]
    if kind == "constant":
        return ConstantRate(float(raw["rate"]))  # type: ignore[arg-type]
    if kind == "ramp":
        return RampRate(float(raw["start_rate"]), float(raw["end_rate"]),  # type: ignore[arg-type]
                        duration=float(raw["duration"]),  # type: ignore[arg-type]
                        t0=float(raw.get("t0", 0.0)))  # type: ignore[arg-type]
    if kind == "diurnal":
        return DiurnalRate(float(raw["base_rate"]),  # type: ignore[arg-type]
                           amplitude=float(raw.get("amplitude", 0.5)),  # type: ignore[arg-type]
                           period=float(raw.get("period", 86400.0)),  # type: ignore[arg-type]
                           phase=float(raw.get("phase", 0.0)))  # type: ignore[arg-type]
    decay = raw.get("decay")
    return FlashCrowdRate(float(raw["base_rate"]), float(raw["peak_rate"]),  # type: ignore[arg-type]
                          at=float(raw["at"]),  # type: ignore[arg-type]
                          ramp=float(raw.get("ramp", 5.0)),  # type: ignore[arg-type]
                          hold=float(raw.get("hold", 10.0)),  # type: ignore[arg-type]
                          decay=None if decay is None else float(decay))  # type: ignore[arg-type]


def population_nodes(spec: PopulationSpec,
                     world: World) -> Optional[List[str]]:
    """Home nodes a population's clients round-robin over (None = all)."""
    if spec.region is not None:
        site_names = world.topology.regions()[spec.region]
    elif spec.sites is not None:
        site_names = list(spec.sites)
    else:
        return None
    return [node_id for site in site_names
            for node_id in world.topology.site(site).node_ids()]


def compile_populations(world: World) -> List[ClientPopulation]:
    num_objects = len(world.objects)
    populations: List[ClientPopulation] = []
    for spec in world.traffic.populations:
        populations.append(ClientPopulation(
            name=spec.name,
            num_clients=spec.clients,
            popularity=_popularity(spec.popularity, num_objects),
            mix=OpMix(float(spec.mix.get("read_fraction", 0.9))),  # type: ignore[arg-type]
            model=spec.model,
            schedule=_schedule(spec.rate) if spec.rate is not None else None,
            think_time=spec.think_time,
            nodes=population_nodes(spec, world),
            snapshot_reads=spec.snapshot_reads))
    return populations


# ------------------------------------------------------------------- faults

def compile_fault_plan(world: World, seed: int) -> FaultPlan:
    """Merge every fault entry into one deterministic plan.

    Randomised generators (churn, cascade) derive their seeds from the run
    seed and the entry's position, so the whole plan is a pure function of
    ``(world, seed)``.
    """
    plan = FaultPlan()
    all_nodes = world.topology.node_ids()
    for index, fault in enumerate(world.faults):
        args = fault.args
        if fault.kind == "crash":
            plan.crash(args["node"], args["at"])
            if args.get("recover_at") is not None:
                plan.recover(args["node"], args["recover_at"])
        elif fault.kind == "site_blast":
            plan.merge(FaultPlan.site_blast(
                world.topology.site(args["site"]).node_ids(),
                at=args["at"], down_for=args["down_for"],
                stagger=args["stagger"], crash_stagger=args["crash_stagger"]))
        elif fault.kind in ("churn", "cascade"):
            if args.get("sites") is not None:
                nodes = [n for site in args["sites"]
                         for n in world.topology.site(site).node_ids()]
            else:
                nodes = all_nodes
            fault_seed = seed + FAULT_SEED_STRIDE * (index + 1)
            if fault.kind == "churn":
                plan.merge(FaultPlan.churn(
                    nodes, rate=args["rate"], duration=args["duration"],
                    seed=fault_seed, downtime=args["downtime"],
                    start=args["start"], spare=args["spare"]))
            else:
                plan.merge(FaultPlan.cascade(
                    nodes, rate=args["rate"], duration=args["duration"],
                    seed=fault_seed, downtime=args["downtime"],
                    amplification=args["amplification"],
                    start=args["start"], spare=args["spare"]))
        elif fault.kind == "partition":
            groups = [[n for site in group
                       for n in world.topology.site(site).node_ids()]
                      for group in args["groups"]]
            plan.partition(groups, args["at"])
            plan.heal(args["heal_at"])
        elif fault.kind == "loss_burst":
            plan.loss_burst(args["at"], args["duration"], args["loss"])
        else:  # pragma: no cover - schema rejects unknown kinds
            raise ValueError(f"unknown fault kind {fault.kind!r}")
    return plan


# --------------------------------------------------------------- world pass

@dataclass
class WorldPass:
    """Builder extra pass finishing what the declarative sections started.

    Runs after every built-in pass (network, placement, traffic are all
    wired) and:

    * applies each lossy link profile as per-node-pair loss on the network
      (both directions — link profiles are unordered site pairs);
    * arms the fault plan through a :class:`FaultInjector` when the world
      has no traffic to carry it (with traffic, the plan rides the
      driver's ``fault_plan`` hook instead, same as hand-built scenarios);
    * attaches the source :class:`World` as ``deployment.world`` so tools
      and reports can see where a deployment came from.
    """

    world: World
    fault_plan: Optional[FaultPlan] = None

    def __call__(self, deployment: IdeaDeployment) -> None:
        latency = deployment.latency
        if isinstance(latency, HeterogeneousLatencyModel):
            topology = deployment.topology
            for (site_a, site_b), profile in latency.link_profiles().items():
                if profile.loss <= 0.0:
                    continue
                for src in topology.nodes_at_site(site_a):
                    for dst in topology.nodes_at_site(site_b):
                        deployment.network.set_loss_probability(
                            profile.loss, src=src, dst=dst)
                        deployment.network.set_loss_probability(
                            profile.loss, src=dst, dst=src)
        deployment.world = self.world
        deployment.world_injector = None
        if self.fault_plan is not None and len(self.fault_plan):
            deployment.world_injector = FaultInjector(
                deployment, self.fault_plan).arm()


# -------------------------------------------------------------------- build

def build_world(world: Union[World, str, dict], seed: Optional[int] = None, *,
                duration: Optional[float] = None,
                collect_metrics: Optional[bool] = None) -> IdeaDeployment:
    """One call from a world document to a ready deployment.

    ``world`` may be a parsed :class:`World`, a catalog name, a ``*.json``
    path or a raw mapping.  ``seed``/``duration`` default to the world's
    ``defaults`` block; ``duration`` bounds the traffic driver (the caller
    still chooses the run horizon via ``deployment.run(until=...)``).
    """
    if not isinstance(world, World):
        world = load_world(world)
    if seed is None:
        seed = world.default_seed
    if duration is None:
        duration = world.default_duration
    topology = compile_topology(world)
    builder = DeploymentBuilder(
        num_nodes=world.num_nodes, seed=seed, topology=topology,
        latency=compile_latency(world, topology),
        use_gossip=world.services.gossip,
        ransub_period=world.services.ransub_period)
    for spec in world.objects:
        builder.add_object(spec.object_id, compile_config(spec.config),
                           top_layer=resolve_top_layer(spec, world))
    plan = compile_fault_plan(world, seed)
    populations = compile_populations(world)
    if populations:
        collect = (world.traffic.collect_metrics if collect_metrics is None
                   else collect_metrics)
        builder.add_traffic(
            populations, duration=duration, max_ops=world.traffic.max_ops,
            fault_plan=plan if len(plan) else None, collect_metrics=collect)
        builder.add_pass(WorldPass(world=world))
    else:
        builder.add_pass(WorldPass(world=world, fault_plan=plan))
    builder.start_overlay_services()
    return builder.build()


# -------------------------------------------------------------- fingerprint

def world_fingerprint(deployment: IdeaDeployment) -> Dict[str, object]:
    """The replay-sensitive counter set a catalog world pins.

    Counters plus an order-independent SHA-256 over canonical per-replica
    lines (version-vector counts, metadata, last-consistent time) — the
    same reduction the shard determinism gate uses, so "bit-identical
    replay" means the same thing across both subsystems.
    """
    state = collect_shard_state(deployment)
    stats = deployment.network.stats
    traffic = deployment.traffic
    return {
        "events": int(state["events"]),
        "writes": int(state["writes"]),
        "ops": int(traffic.ops_issued) if traffic is not None else 0,
        "sent": int(state["sent"]),
        "delivered": int(state["delivered"]),
        "dropped": int(sum(stats.dropped.values())),
        "state_hash": state_fingerprint(state["items"]),
    }
