"""Loading worlds: by dict, by file path, or by catalog name.

The committed catalog lives in ``repro/worlds/catalog/*.json`` — one file
per named world, shipped with the package.  ``load_world`` accepts any of:

* a JSON-compatible mapping (already in memory),
* a filesystem path ending in ``.json``,
* a bare catalog name (``"wan-40"``).

All three funnel through :func:`repro.worlds.schema.parse_world`, so every
entry point gets the same path-to-field diagnostics.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Mapping, Union

from repro.worlds.errors import WorldNotFoundError, WorldValidationError
from repro.worlds.model import World
from repro.worlds.schema import parse_world

#: directory holding the committed named worlds
CATALOG_DIR = Path(__file__).resolve().parent / "catalog"


def catalog_names() -> List[str]:
    """Sorted names of every committed catalog world."""
    if not CATALOG_DIR.is_dir():
        return []
    return sorted(p.stem for p in CATALOG_DIR.glob("*.json"))


def catalog_path(name: str) -> Path:
    path = CATALOG_DIR / f"{name}.json"
    if not path.is_file():
        raise WorldNotFoundError(name, known=catalog_names())
    return path


def load_world_file(path: Union[str, Path]) -> World:
    """Load and validate one world JSON file."""
    path = Path(path)
    try:
        with path.open("r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except json.JSONDecodeError as exc:
        raise WorldValidationError(
            "$", f"{path} is not valid JSON: {exc}") from exc
    return parse_world(doc, source=str(path))


def load_world(ref: Union[str, Path, Mapping]) -> World:
    """Resolve ``ref`` — mapping, ``*.json`` path, or catalog name."""
    if isinstance(ref, Mapping):
        return parse_world(ref)
    if isinstance(ref, Path) or str(ref).endswith(".json"):
        path = Path(ref)
        if not path.is_file():
            raise WorldNotFoundError(str(ref), known=catalog_names())
        return load_world_file(path)
    return load_world_file(catalog_path(str(ref)))


def load_catalog() -> Dict[str, World]:
    """Every committed world, loaded and validated (name -> World)."""
    return {name: load_world_file(catalog_path(name))
            for name in catalog_names()}
