"""Entry point for ``python -m repro.worlds``."""

import sys

from repro.worlds.cli import main

if __name__ == "__main__":
    sys.exit(main())
