"""Command-line front end: ``python -m repro.worlds``.

Inspect, validate and run world documents::

    python -m repro.worlds --list
    python -m repro.worlds --describe edge-lossy
    python -m repro.worlds --validate                  # whole catalog
    python -m repro.worlds --validate my_world.json
    python -m repro.worlds --run wan-20 --json -
    python -m repro.worlds --fingerprint wan-20 --write

``--validate`` exits nonzero on the first invalid document, printing the
JSON path of the offending field — the CI catalog gate runs exactly this.
``--fingerprint --write`` re-pins a world's committed fingerprint block
after an intentional behaviour change (the determinism tests and the
``worlds`` bench gate replay the pinned values).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.worlds.compile import build_world, world_fingerprint
from repro.worlds.errors import WorldError
from repro.worlds.loader import (catalog_names, catalog_path, load_world,
                                 load_world_file)
from repro.worlds.model import World
from repro.worlds.runner import run_world_point


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.worlds",
        description="Inspect, validate and run declarative world documents.")
    action = parser.add_mutually_exclusive_group()
    action.add_argument("--list", action="store_true",
                        help="list the catalog worlds and exit")
    action.add_argument("--describe", metavar="WORLD",
                        help="print one world's composition")
    action.add_argument("--validate", nargs="*", metavar="WORLD",
                        help="validate worlds (no arguments: whole catalog); "
                             "exits nonzero naming the offending JSON path")
    action.add_argument("--run", metavar="WORLD",
                        help="build and run a world, print its fingerprint")
    action.add_argument("--fingerprint", metavar="WORLD",
                        help="compute a world's replay fingerprint")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the world's default seed")
    parser.add_argument("--duration", type=float, default=None,
                        help="override the world's default horizon (seconds)")
    parser.add_argument("--json", metavar="PATH", dest="json_path",
                        help="write the run/fingerprint result as JSON "
                             "('-' for stdout)")
    parser.add_argument("--write", action="store_true",
                        help="with --fingerprint: pin the computed values "
                             "into the world's JSON file")
    return parser


def _describe(world: World) -> str:
    lines = [f"{world.name} — {world.description}",
             f"  {world.summary()}",
             f"  defaults: seed={world.default_seed}, "
             f"duration={world.default_duration:g}s"]
    for site in world.topology.sites:
        tier = f", tier={site.tier}" if site.tier else ""
        region = f", region={site.region}" if site.region else ""
        lines.append(f"  site {site.name}: {site.nodes} nodes{region}{tier}")
    for link in world.topology.links:
        a, b = link.between
        parts = []
        if link.latency is not None:
            parts.append(f"latency={link.latency * 1e3:g}ms")
        if link.latency_scale is not None:
            parts.append(f"scale={link.latency_scale:g}")
        if link.jitter_sigma is not None:
            parts.append(f"sigma={link.jitter_sigma:g}")
        if link.loss:
            parts.append(f"loss={link.loss:.1%}")
        lines.append(f"  link {a}<->{b}: {', '.join(parts) or 'default'}")
    for obj in world.objects:
        if obj.top_layer_nodes is not None:
            top = f"top_layer={list(obj.top_layer_nodes)}"
        elif obj.top_layer_sites is not None:
            top = f"top_layer=first node of {list(obj.top_layer_sites)}"
        else:
            top = "dynamic overlay"
        lines.append(f"  object {obj.object_id}: {top}")
    for pop in world.traffic.populations:
        where = (f"region {pop.region}" if pop.region
                 else f"sites {list(pop.sites)}" if pop.sites else "all nodes")
        lines.append(f"  population {pop.name}: {pop.clients} {pop.model} "
                     f"clients on {where}")
    for fault in world.faults:
        lines.append(f"  fault {fault.kind}: "
                     + ", ".join(f"{k}={v}" for k, v in fault.args.items()
                                 if v is not None))
    if world.fingerprint is not None:
        lines.append(f"  pinned fingerprint: seed={world.fingerprint.seed}, "
                     f"horizon={world.fingerprint.horizon:g}s, "
                     f"hash={str(world.fingerprint.values.get('state_hash', ''))[:12]}…")
    return "\n".join(lines)


def _emit_json(payload: dict, json_path: Optional[str]) -> None:
    if not json_path:
        return
    text = json.dumps(payload, indent=2, sort_keys=True)
    if json_path == "-":
        print(text)
    else:
        Path(json_path).write_text(text + "\n", encoding="utf-8")
        print(f"JSON written to {json_path}")


def _pin_fingerprint(world: World, seed: int, horizon: float,
                     values: dict) -> Path:
    """Rewrite the world's JSON file with the computed fingerprint block."""
    if world.source is None:
        raise WorldError("cannot --write a fingerprint for an in-memory world")
    path = Path(world.source)
    doc = json.loads(path.read_text(encoding="utf-8"))
    doc["fingerprint"] = {"seed": seed, "horizon": horizon, **values}
    path.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    return path


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    try:
        if args.list:
            names = catalog_names()
            if not names:
                print("catalog is empty")
                return 0
            worlds = [load_world_file(catalog_path(name)) for name in names]
            width = max(len(w.name) for w in worlds)
            for world in worlds:
                print(f"{world.name:<{width}}  {world.summary():<40}  "
                      f"{world.description}")
            return 0

        if args.describe:
            print(_describe(load_world(args.describe)))
            return 0

        if args.validate is not None:
            refs = args.validate or catalog_names()
            if not refs:
                print("catalog is empty; nothing to validate")
                return 1
            for ref in refs:
                try:
                    world = load_world(ref)
                except WorldError as exc:
                    print(f"INVALID {ref}: {exc}", file=sys.stderr)
                    return 1
                print(f"ok {world.name}: {world.summary()}")
            return 0

        if args.run:
            result = run_world_point(world=args.run, seed=args.seed,
                                     duration=args.duration)
            print(f"{result.world}: {result.num_nodes} nodes ran "
                  f"{result.horizon:g}s (seed {result.seed}) in "
                  f"{result.wall_seconds:.2f}s wall")
            for key, value in sorted(result.fingerprint.items()):
                print(f"  {key}: {value}")
            _emit_json(result.as_dict(), args.json_path)
            return 0

        if args.fingerprint:
            world = load_world(args.fingerprint)
            seed = args.seed if args.seed is not None else world.default_seed
            horizon = (args.duration if args.duration is not None
                       else world.default_duration)
            deployment = build_world(world, seed, duration=horizon)
            deployment.run(until=horizon)
            values = world_fingerprint(deployment)
            for key, value in sorted(values.items()):
                print(f"{key}: {value}")
            if args.write:
                path = _pin_fingerprint(world, seed, horizon, values)
                print(f"fingerprint pinned into {path}")
            _emit_json({"world": world.name, "seed": seed,
                        "horizon": horizon, **values}, args.json_path)
            return 0
    except WorldError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    parser.print_help()
    return 2
