"""Parsed world documents: plain dataclasses the compiler consumes.

A :class:`World` is the validated, in-memory form of one world JSON
document (see ``repro/worlds/schema.py`` for the format).  It stays pure
data — no simulator handles, no RNGs — so worlds are cheap to load, trivial
to compare, and safe to ship across farm worker processes by name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: the one format version this loader understands
WORLD_VERSION = 1


@dataclass(frozen=True)
class SiteSpec:
    """One named site: coordinates, node count, region and link tier."""

    name: str
    x: float
    y: float
    nodes: int
    region: Optional[str] = None
    tier: Optional[str] = None

    def node_ids(self) -> List[str]:
        """The node ids this site contributes (``<site>-<i>``)."""
        return [f"{self.name}-{i}" for i in range(self.nodes)]


@dataclass(frozen=True)
class TierSpec:
    """A named link class shared by every site that declares the tier.

    The tier shapes every inter-site link *incident on* a member site:
    base delays scale by ``latency_scale``, jitter widens to
    ``jitter_sigma`` and messages on the link drop with probability
    ``loss`` (on top of any global loss).  Two tiered endpoints compose:
    scales multiply, sigmas take the max, losses combine as independent
    drops.
    """

    latency_scale: float = 1.0
    jitter_sigma: Optional[float] = None
    loss: float = 0.0


@dataclass(frozen=True)
class LinkSpec:
    """An explicit override for one inter-site link (beats any tier)."""

    between: Tuple[str, str]
    latency: Optional[float] = None
    latency_scale: Optional[float] = None
    jitter_sigma: Optional[float] = None
    loss: float = 0.0


@dataclass(frozen=True)
class TopologySpec:
    """Sites, tiers and link overrides — the world's physical shape."""

    sites: List[SiteSpec]
    tiers: Dict[str, TierSpec] = field(default_factory=dict)
    links: List[LinkSpec] = field(default_factory=list)
    jitter_sigma: float = 0.25
    min_jitter: float = 0.5

    def site(self, name: str) -> SiteSpec:
        for site in self.sites:
            if site.name == name:
                return site
        raise KeyError(name)

    def node_ids(self) -> List[str]:
        return [n for site in self.sites for n in site.node_ids()]

    def regions(self) -> Dict[str, List[str]]:
        """region name -> site names declaring it (listed order)."""
        regions: Dict[str, List[str]] = {}
        for site in self.sites:
            if site.region is not None:
                regions.setdefault(site.region, []).append(site.name)
        return regions


@dataclass(frozen=True)
class ObjectSpec:
    """One managed object: id, top-layer policy and IDEA configuration.

    ``top_layer_nodes``/``top_layer_sites`` pin a static top layer (site
    form resolves to the first node of each listed site — the paper's
    "far apart" writers); both ``None`` leaves the object on the dynamic
    temperature overlay.  ``config`` holds the raw (already validated)
    IDEA knobs; the compiler turns it into an ``IdeaConfig``.
    """

    object_id: str
    config: Dict[str, object] = field(default_factory=dict)
    top_layer_nodes: Optional[Tuple[str, ...]] = None
    top_layer_sites: Optional[Tuple[str, ...]] = None


@dataclass(frozen=True)
class PopulationSpec:
    """One client population bound to a region or an explicit site list."""

    name: str
    clients: int
    model: str = "open"                       # "open" | "closed"
    region: Optional[str] = None
    sites: Optional[Tuple[str, ...]] = None   # None+None -> every node
    popularity: Dict[str, object] = field(default_factory=dict)
    mix: Dict[str, object] = field(default_factory=dict)
    rate: Optional[Dict[str, object]] = None
    think_time: float = 1.0
    snapshot_reads: bool = False


@dataclass(frozen=True)
class TrafficSpec:
    populations: List[PopulationSpec] = field(default_factory=list)
    max_ops: Optional[int] = None
    collect_metrics: bool = False


@dataclass(frozen=True)
class FaultSpec:
    """One fault entry: a kind plus its (validated) keyword arguments."""

    kind: str
    args: Dict[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class ServicesSpec:
    gossip: bool = False
    ransub_period: float = 5.0


@dataclass(frozen=True)
class FingerprintSpec:
    """The pinned replay fingerprint a catalog world commits to.

    ``seed``/``horizon`` record the run the values were captured from;
    ``values`` are the counters plus the replica-state hash that
    ``repro.worlds.compile.world_fingerprint`` reproduces bit-identically.
    """

    seed: int
    horizon: float
    values: Dict[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class World:
    """A fully validated world document."""

    name: str
    description: str
    topology: TopologySpec
    objects: List[ObjectSpec]
    traffic: TrafficSpec = field(default_factory=TrafficSpec)
    faults: List[FaultSpec] = field(default_factory=list)
    services: ServicesSpec = field(default_factory=ServicesSpec)
    default_seed: int = 7
    default_duration: float = 10.0
    fingerprint: Optional[FingerprintSpec] = None
    #: where the document was loaded from (None for in-memory dicts)
    source: Optional[str] = None

    @property
    def num_nodes(self) -> int:
        return sum(site.nodes for site in self.topology.sites)

    def summary(self) -> str:
        parts = [f"{self.num_nodes} nodes", f"{len(self.topology.sites)} sites",
                 f"{len(self.objects)} objects"]
        if self.traffic.populations:
            clients = sum(p.clients for p in self.traffic.populations)
            parts.append(f"{clients} clients")
        if self.faults:
            parts.append(f"{len(self.faults)} faults")
        return ", ".join(parts)
