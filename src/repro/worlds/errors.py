"""World-format errors carrying a precise path into the offending document.

Every validation failure names the JSON path of the field that caused it
(``topology.sites[2].name``, ``faults[1].at``), so a user editing a world
file gets pointed at the exact line to fix instead of a generic "invalid
world" message.  The loader tests assert these paths literally.
"""

from __future__ import annotations

from typing import Optional


class WorldError(Exception):
    """Base class for everything the worlds subsystem raises."""


class WorldValidationError(WorldError):
    """A world document failed schema or semantic validation.

    ``path`` is the dotted/indexed JSON path of the offending field (the
    document root is ``$``); ``reason`` says what is wrong with it.  The
    rendered message is ``"<path>: <reason>"``.
    """

    def __init__(self, path: str, reason: str) -> None:
        self.path = path or "$"
        self.reason = reason
        super().__init__(f"{self.path}: {reason}")


class WorldNotFoundError(WorldError):
    """A world name/path did not resolve to a document.

    ``known`` (when given) lists the catalog names a ``--list`` would show,
    so a typo'd name comes back with the valid alternatives.
    """

    def __init__(self, ref: str, known: Optional[list] = None) -> None:
        self.ref = ref
        message = f"no world named {ref!r} and no such file"
        if known:
            message += f" (catalog worlds: {', '.join(sorted(known))})"
        super().__init__(message)
