"""World format v1: schema validation with path-to-field diagnostics.

:func:`parse_world` turns a JSON-compatible dict into a validated
:class:`~repro.worlds.model.World`.  Validation is strict in three ways:

* **unknown keys are rejected** — a typo'd field name fails loudly instead
  of silently doing nothing;
* **every failure names its JSON path** — ``topology.sites[2].nodes`` or
  ``faults[1].groups[0]``, so the error points at the exact field;
* **cross-references are checked semantically** — site names in traffic
  bindings, fault targets and top-layer pins must exist; partition / blast
  windows must not overlap (the network supports one partition at a time);
  latencies and probabilities must be in range.

The document format (version 1)::

    {
      "world": 1,
      "name": "...", "description": "...",
      "defaults": {"seed": 7, "duration": 10.0},
      "topology": {
        "jitter_sigma": 0.25, "min_jitter": 0.5,
        "tiers": {"edge": {"latency_scale": 2.0, "jitter_sigma": 0.6,
                            "loss": 0.02}},
        "sites": [{"name": "boston", "x": 4400, "y": 800, "nodes": 5,
                    "region": "us-east", "tier": "edge"}, ...],
        "links": [{"between": ["boston", "berkeley"], "latency": 0.05,
                    "jitter_sigma": 0.3, "loss": 0.01}, ...]
      },
      "placement": {"objects": [{"id": "board",
                                  "top_layer": {"sites": [...]},
                                  "config": {"mode": "hint_based", ...}}]},
      "traffic": {"max_ops": null, "populations": [
          {"name": "readers", "clients": 20, "model": "open",
           "region": "us-east",
           "popularity": {"kind": "zipf", "skew": 0.9},
           "mix": {"read_fraction": 0.9},
           "rate": {"kind": "constant", "rate": 2.0}}]},
      "faults": [{"kind": "site_blast", "site": "boston",
                   "at": 10.0, "down_for": 5.0}, ...],
      "services": {"gossip": false, "ransub_period": 5.0},
      "fingerprint": {"seed": 7, "horizon": 10.0, ...}
    }
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.worlds.errors import WorldValidationError
from repro.worlds.model import (FaultSpec, FingerprintSpec, LinkSpec,
                                ObjectSpec, PopulationSpec, ServicesSpec,
                                SiteSpec, TierSpec, TopologySpec, TrafficSpec,
                                World, WORLD_VERSION)

# --------------------------------------------------------------- primitives

def _fail(path: str, reason: str) -> None:
    raise WorldValidationError(path, reason)


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _mapping(value: Any, path: str) -> Mapping:
    if not isinstance(value, Mapping):
        _fail(path, f"expected an object, got {type(value).__name__}")
    return value


def _reject_unknown(doc: Mapping, allowed: Sequence[str], path: str) -> None:
    for key in doc:
        if key not in allowed:
            _fail(f"{path}.{key}" if path != "$" else key,
                  f"unknown key {key!r} (allowed: {', '.join(sorted(allowed))})")


def _string(doc: Mapping, key: str, path: str, *, required: bool = False,
            default: Optional[str] = None) -> Optional[str]:
    if key not in doc:
        if required:
            _fail(path, f"missing required key {key!r}")
        return default
    value = doc[key]
    if not isinstance(value, str) or not value:
        _fail(f"{path}.{key}", "expected a non-empty string")
    return value


def _number(doc: Mapping, key: str, path: str, *, required: bool = False,
            default: Optional[float] = None, minimum: Optional[float] = None,
            exclusive_minimum: Optional[float] = None,
            below_one: bool = False,
            maximum: Optional[float] = None,
            nullable: bool = False) -> Optional[float]:
    if key not in doc:
        if required:
            _fail(path, f"missing required key {key!r}")
        return default
    value = doc[key]
    here = f"{path}.{key}"
    if value is None:
        if nullable:
            return None
        _fail(here, "must not be null")
    if not _is_number(value):
        _fail(here, f"expected a number, got {type(value).__name__}")
    value = float(value)
    if minimum is not None and value < minimum:
        _fail(here, f"must be >= {minimum:g}, got {value:g}")
    if exclusive_minimum is not None and value <= exclusive_minimum:
        _fail(here, f"must be > {exclusive_minimum:g}, got {value:g}")
    if maximum is not None and value > maximum:
        _fail(here, f"must be <= {maximum:g}, got {value:g}")
    if below_one and value >= 1.0:
        _fail(here, f"must be < 1, got {value:g}")
    return value


def _integer(doc: Mapping, key: str, path: str, *, required: bool = False,
             default: Optional[int] = None,
             minimum: Optional[int] = None,
             nullable: bool = False) -> Optional[int]:
    if key not in doc:
        if required:
            _fail(path, f"missing required key {key!r}")
        return default
    value = doc[key]
    here = f"{path}.{key}"
    if value is None:
        if nullable:
            return None
        _fail(here, "must not be null")
    if not isinstance(value, int) or isinstance(value, bool):
        _fail(here, f"expected an integer, got {type(value).__name__}")
    if minimum is not None and value < minimum:
        _fail(here, f"must be >= {minimum}, got {value}")
    return value


def _boolean(doc: Mapping, key: str, path: str, *,
             default: bool = False) -> bool:
    if key not in doc:
        return default
    value = doc[key]
    if not isinstance(value, bool):
        _fail(f"{path}.{key}", f"expected a boolean, got {type(value).__name__}")
    return value


def _string_list(value: Any, path: str, *, min_items: int = 1) -> List[str]:
    if not isinstance(value, list):
        _fail(path, f"expected an array, got {type(value).__name__}")
    if len(value) < min_items:
        _fail(path, f"needs at least {min_items} item(s)")
    out: List[str] = []
    for i, item in enumerate(value):
        if not isinstance(item, str) or not item:
            _fail(f"{path}[{i}]", "expected a non-empty string")
        out.append(item)
    return out


# ----------------------------------------------------------------- topology

def _parse_site(doc: Any, path: str) -> SiteSpec:
    doc = _mapping(doc, path)
    _reject_unknown(doc, ("name", "x", "y", "nodes", "region", "tier"), path)
    return SiteSpec(
        name=_string(doc, "name", path, required=True),
        x=_number(doc, "x", path, required=True),
        y=_number(doc, "y", path, required=True),
        nodes=_integer(doc, "nodes", path, required=True, minimum=1),
        region=_string(doc, "region", path),
        tier=_string(doc, "tier", path))


def _parse_tier(doc: Any, path: str) -> TierSpec:
    doc = _mapping(doc, path)
    _reject_unknown(doc, ("latency_scale", "jitter_sigma", "loss"), path)
    return TierSpec(
        latency_scale=_number(doc, "latency_scale", path, default=1.0,
                              exclusive_minimum=0.0),
        jitter_sigma=_number(doc, "jitter_sigma", path, minimum=0.0),
        loss=_number(doc, "loss", path, default=0.0, minimum=0.0,
                     below_one=True))


def _parse_link(doc: Any, path: str, site_names: Sequence[str]) -> LinkSpec:
    doc = _mapping(doc, path)
    _reject_unknown(doc, ("between", "latency", "latency_scale",
                          "jitter_sigma", "loss"), path)
    if "between" not in doc:
        _fail(path, "missing required key 'between'")
    pair = _string_list(doc["between"], f"{path}.between", min_items=2)
    if len(pair) != 2:
        _fail(f"{path}.between", f"expected exactly 2 site names, got {len(pair)}")
    for i, name in enumerate(pair):
        if name not in site_names:
            _fail(f"{path}.between[{i}]", f"unknown site {name!r}")
    if pair[0] == pair[1]:
        _fail(f"{path}.between", "link endpoints must be two different sites")
    return LinkSpec(
        between=(pair[0], pair[1]),
        latency=_number(doc, "latency", path, minimum=0.0),
        latency_scale=_number(doc, "latency_scale", path,
                              exclusive_minimum=0.0),
        jitter_sigma=_number(doc, "jitter_sigma", path, minimum=0.0),
        loss=_number(doc, "loss", path, default=0.0, minimum=0.0,
                     below_one=True))


def _parse_topology(doc: Any, path: str) -> TopologySpec:
    doc = _mapping(doc, path)
    _reject_unknown(doc, ("sites", "tiers", "links", "jitter_sigma",
                          "min_jitter"), path)
    if "sites" not in doc:
        _fail(path, "missing required key 'sites'")
    raw_sites = doc["sites"]
    if not isinstance(raw_sites, list) or not raw_sites:
        _fail(f"{path}.sites", "expected a non-empty array of sites")
    sites = [_parse_site(site, f"{path}.sites[{i}]")
             for i, site in enumerate(raw_sites)]
    names = [s.name for s in sites]
    for i, name in enumerate(names):
        if name in names[:i]:
            _fail(f"{path}.sites[{i}].name", f"duplicate site name {name!r}")
    if sum(s.nodes for s in sites) < 2:
        _fail(f"{path}.sites", "a world needs at least 2 nodes in total")

    tiers: Dict[str, TierSpec] = {}
    if "tiers" in doc:
        raw_tiers = _mapping(doc["tiers"], f"{path}.tiers")
        for tier_name, tier_doc in raw_tiers.items():
            tiers[tier_name] = _parse_tier(tier_doc, f"{path}.tiers.{tier_name}")
    for i, site in enumerate(sites):
        if site.tier is not None and site.tier not in tiers:
            _fail(f"{path}.sites[{i}].tier",
                  f"unknown tier {site.tier!r} (declared: "
                  f"{', '.join(sorted(tiers)) or 'none'})")

    links: List[LinkSpec] = []
    if "links" in doc:
        raw_links = doc["links"]
        if not isinstance(raw_links, list):
            _fail(f"{path}.links", "expected an array of links")
        seen: set = set()
        for i, link_doc in enumerate(raw_links):
            link = _parse_link(link_doc, f"{path}.links[{i}]", names)
            key = tuple(sorted(link.between))
            if key in seen:
                _fail(f"{path}.links[{i}].between",
                      f"duplicate link between {key[0]!r} and {key[1]!r}")
            seen.add(key)
            links.append(link)

    return TopologySpec(
        sites=sites, tiers=tiers, links=links,
        jitter_sigma=_number(doc, "jitter_sigma", path, default=0.25,
                             minimum=0.0),
        min_jitter=_number(doc, "min_jitter", path, default=0.5,
                           exclusive_minimum=0.0, maximum=1.0))


# ---------------------------------------------------------------- placement

_CONFIG_KEYS = ("mode", "hint_level", "hint_delta", "background_period",
                "resolution_strategy", "weights", "metric")
_MODES = ("on_demand", "hint_based", "automatic")


def _parse_config(doc: Any, path: str) -> Dict[str, Any]:
    doc = _mapping(doc, path)
    _reject_unknown(doc, _CONFIG_KEYS, path)
    mode = _string(doc, "mode", path)
    if mode is not None and mode not in _MODES:
        _fail(f"{path}.mode", f"unknown mode {mode!r} (one of: {', '.join(_MODES)})")
    _number(doc, "hint_level", path, minimum=0.0, maximum=1.0)
    _number(doc, "hint_delta", path, minimum=0.0)
    _number(doc, "background_period", path, exclusive_minimum=0.0,
            nullable=True)
    strategy = _integer(doc, "resolution_strategy", path)
    if strategy is not None and strategy not in (1, 2, 3):
        _fail(f"{path}.resolution_strategy",
              f"must be 1, 2 or 3 (got {strategy})")
    if "weights" in doc:
        weights = _mapping(doc["weights"], f"{path}.weights")
        _reject_unknown(weights, ("numerical", "order", "staleness"),
                        f"{path}.weights")
        for key in ("numerical", "order", "staleness"):
            _number(weights, key, f"{path}.weights", minimum=0.0)
    if "metric" in doc:
        metric = _mapping(doc["metric"], f"{path}.metric")
        _reject_unknown(metric, ("max_numerical", "max_order",
                                 "max_staleness"), f"{path}.metric")
        for key in ("max_numerical", "max_order", "max_staleness"):
            _number(metric, key, f"{path}.metric", exclusive_minimum=0.0)
    return dict(doc)


def _parse_object(doc: Any, path: str, topology: TopologySpec) -> ObjectSpec:
    doc = _mapping(doc, path)
    _reject_unknown(doc, ("id", "top_layer", "config"), path)
    object_id = _string(doc, "id", path, required=True)
    top_nodes: Optional[Tuple[str, ...]] = None
    top_sites: Optional[Tuple[str, ...]] = None
    if doc.get("top_layer") is not None:
        top = _mapping(doc["top_layer"], f"{path}.top_layer")
        _reject_unknown(top, ("nodes", "sites"), f"{path}.top_layer")
        if ("nodes" in top) == ("sites" in top):
            _fail(f"{path}.top_layer",
                  "give exactly one of 'nodes' or 'sites'")
        if "nodes" in top:
            nodes = _string_list(top["nodes"], f"{path}.top_layer.nodes")
            known = set(topology.node_ids())
            for i, node in enumerate(nodes):
                if node not in known:
                    _fail(f"{path}.top_layer.nodes[{i}]",
                          f"unknown node {node!r} (ids are '<site>-<i>')")
            top_nodes = tuple(nodes)
        else:
            sites = _string_list(top["sites"], f"{path}.top_layer.sites")
            names = {s.name for s in topology.sites}
            for i, site in enumerate(sites):
                if site not in names:
                    _fail(f"{path}.top_layer.sites[{i}]",
                          f"unknown site {site!r}")
            top_sites = tuple(sites)
    config = (_parse_config(doc["config"], f"{path}.config")
              if "config" in doc else {})
    return ObjectSpec(object_id=object_id, config=config,
                      top_layer_nodes=top_nodes, top_layer_sites=top_sites)


def _parse_placement(doc: Any, path: str,
                     topology: TopologySpec) -> List[ObjectSpec]:
    doc = _mapping(doc, path)
    _reject_unknown(doc, ("objects",), path)
    if "objects" not in doc:
        _fail(path, "missing required key 'objects'")
    raw = doc["objects"]
    if not isinstance(raw, list) or not raw:
        _fail(f"{path}.objects", "expected a non-empty array of objects")
    objects = [_parse_object(o, f"{path}.objects[{i}]", topology)
               for i, o in enumerate(raw)]
    ids = [o.object_id for o in objects]
    for i, object_id in enumerate(ids):
        if object_id in ids[:i]:
            _fail(f"{path}.objects[{i}].id",
                  f"duplicate object id {object_id!r}")
    return objects


# ------------------------------------------------------------------ traffic

# per kind: (required numeric keys, optional numeric keys)
_POPULARITY_KINDS = {
    "uniform": ((), ()),
    "zipf": ((), ("skew",)),
    "hotspot": (("rotate_period",), ("hot_weight",)),
}
_RATE_KINDS = {
    "constant": (("rate",), ()),
    "ramp": (("start_rate", "end_rate", "duration"), ("t0",)),
    "diurnal": (("base_rate",), ("amplitude", "period", "phase")),
    "flash_crowd": (("base_rate", "peak_rate", "at"),
                    ("ramp", "hold", "decay")),
}


def _parse_kinded(doc: Any, path: str,
                  kinds: Mapping[str, Tuple[Sequence[str], Sequence[str]]],
                  what: str) -> Dict[str, Any]:
    doc = _mapping(doc, path)
    kind = _string(doc, "kind", path, required=True)
    if kind not in kinds:
        _fail(f"{path}.kind",
              f"unknown {what} kind {kind!r} (one of: {', '.join(sorted(kinds))})")
    required, optional = kinds[kind]
    _reject_unknown(doc, ("kind",) + tuple(required) + tuple(optional), path)
    for key in required:
        _number(doc, key, path, required=True, minimum=0.0)
    for key in optional:
        if key in doc:
            _number(doc, key, path, minimum=0.0)
    return dict(doc)


def _parse_population(doc: Any, path: str,
                      topology: TopologySpec) -> PopulationSpec:
    doc = _mapping(doc, path)
    _reject_unknown(doc, ("name", "clients", "model", "region", "sites",
                          "popularity", "mix", "rate", "think_time",
                          "snapshot_reads"), path)
    name = _string(doc, "name", path, required=True)
    model = _string(doc, "model", path, default="open")
    if model not in ("open", "closed"):
        _fail(f"{path}.model", f"must be 'open' or 'closed', got {model!r}")
    region = _string(doc, "region", path)
    sites: Optional[Tuple[str, ...]] = None
    if region is not None and "sites" in doc:
        _fail(path, "give at most one of 'region' and 'sites'")
    if region is not None and region not in topology.regions():
        declared = sorted(topology.regions()) or ["none"]
        _fail(f"{path}.region",
              f"no site declares region {region!r} (declared: "
              f"{', '.join(declared)})")
    if "sites" in doc:
        listed = _string_list(doc["sites"], f"{path}.sites")
        names = {s.name for s in topology.sites}
        for i, site in enumerate(listed):
            if site not in names:
                _fail(f"{path}.sites[{i}]", f"unknown site {site!r}")
        sites = tuple(listed)
    popularity = (_parse_kinded(doc["popularity"], f"{path}.popularity",
                                _POPULARITY_KINDS, "popularity")
                  if "popularity" in doc else {"kind": "uniform"})
    mix: Dict[str, Any] = {}
    if "mix" in doc:
        raw_mix = _mapping(doc["mix"], f"{path}.mix")
        _reject_unknown(raw_mix, ("read_fraction",), f"{path}.mix")
        _number(raw_mix, "read_fraction", f"{path}.mix", minimum=0.0,
                maximum=1.0)
        mix = dict(raw_mix)
    rate = None
    if "rate" in doc:
        rate = _parse_kinded(doc["rate"], f"{path}.rate", _RATE_KINDS, "rate")
    if model == "open" and rate is None:
        _fail(path, "open-loop populations need a 'rate' schedule")
    return PopulationSpec(
        name=name,
        clients=_integer(doc, "clients", path, required=True, minimum=1),
        model=model, region=region, sites=sites, popularity=popularity,
        mix=mix, rate=rate,
        think_time=_number(doc, "think_time", path, default=1.0,
                           exclusive_minimum=0.0),
        snapshot_reads=_boolean(doc, "snapshot_reads", path))


def _parse_traffic(doc: Any, path: str, topology: TopologySpec) -> TrafficSpec:
    doc = _mapping(doc, path)
    _reject_unknown(doc, ("populations", "max_ops", "collect_metrics"), path)
    populations: List[PopulationSpec] = []
    if "populations" in doc:
        raw = doc["populations"]
        if not isinstance(raw, list):
            _fail(f"{path}.populations", "expected an array of populations")
        populations = [_parse_population(p, f"{path}.populations[{i}]", topology)
                       for i, p in enumerate(raw)]
        names = [p.name for p in populations]
        for i, name in enumerate(names):
            if name in names[:i]:
                _fail(f"{path}.populations[{i}].name",
                      f"duplicate population name {name!r}")
    return TrafficSpec(
        populations=populations,
        max_ops=_integer(doc, "max_ops", path, minimum=1, nullable=True),
        collect_metrics=_boolean(doc, "collect_metrics", path))


# ------------------------------------------------------------------- faults

def _parse_fault(doc: Any, path: str, topology: TopologySpec) -> FaultSpec:
    doc = _mapping(doc, path)
    kind = _string(doc, "kind", path, required=True)
    site_names = {s.name for s in topology.sites}
    args: Dict[str, Any] = {}

    def site_ref(key: str, *, required: bool = False) -> Optional[str]:
        site = _string(doc, key, path, required=required)
        if site is not None and site not in site_names:
            _fail(f"{path}.{key}", f"unknown site {site!r}")
        return site

    if kind == "crash":
        _reject_unknown(doc, ("kind", "node", "at", "recover_at"), path)
        node = _string(doc, "node", path, required=True)
        if node not in topology.node_ids():
            _fail(f"{path}.node", f"unknown node {node!r} (ids are '<site>-<i>')")
        at = _number(doc, "at", path, required=True, minimum=0.0)
        recover_at = _number(doc, "recover_at", path, exclusive_minimum=0.0)
        if recover_at is not None and recover_at <= at:
            _fail(f"{path}.recover_at", "must come after 'at'")
        args = {"node": node, "at": at, "recover_at": recover_at}
    elif kind == "site_blast":
        _reject_unknown(doc, ("kind", "site", "at", "down_for", "stagger",
                              "crash_stagger"), path)
        args = {
            "site": site_ref("site", required=True),
            "at": _number(doc, "at", path, required=True, minimum=0.0),
            "down_for": _number(doc, "down_for", path, required=True,
                                exclusive_minimum=0.0),
            "stagger": _number(doc, "stagger", path, default=0.5, minimum=0.0),
            "crash_stagger": _number(doc, "crash_stagger", path, default=0.0,
                                     minimum=0.0),
        }
    elif kind in ("churn", "cascade"):
        allowed = ["kind", "rate", "duration", "start", "downtime", "spare",
                   "sites"]
        if kind == "cascade":
            allowed.append("amplification")
        _reject_unknown(doc, tuple(allowed), path)
        sites = None
        if "sites" in doc:
            listed = _string_list(doc["sites"], f"{path}.sites")
            for i, site in enumerate(listed):
                if site not in site_names:
                    _fail(f"{path}.sites[{i}]", f"unknown site {site!r}")
            sites = tuple(listed)
        args = {
            "rate": _number(doc, "rate", path, required=True,
                            exclusive_minimum=0.0),
            "duration": _number(doc, "duration", path, required=True,
                                exclusive_minimum=0.0),
            "start": _number(doc, "start", path, default=0.0, minimum=0.0),
            "downtime": _number(doc, "downtime", path, default=20.0,
                                exclusive_minimum=0.0),
            "spare": _integer(doc, "spare", path, default=1, minimum=1),
            "sites": sites,
        }
        if kind == "cascade":
            args["amplification"] = _number(doc, "amplification", path,
                                            default=2.0, minimum=0.0)
    elif kind == "partition":
        _reject_unknown(doc, ("kind", "at", "heal_at", "groups"), path)
        at = _number(doc, "at", path, required=True, minimum=0.0)
        heal_at = _number(doc, "heal_at", path, required=True,
                          exclusive_minimum=0.0)
        if heal_at <= at:
            _fail(f"{path}.heal_at", "must come after 'at'")
        if "groups" not in doc:
            _fail(path, "missing required key 'groups'")
        raw_groups = doc["groups"]
        if not isinstance(raw_groups, list) or not raw_groups:
            _fail(f"{path}.groups",
                  "expected a non-empty array of site-name groups")
        groups: List[Tuple[str, ...]] = []
        seen: set = set()
        for i, group in enumerate(raw_groups):
            listed = _string_list(group, f"{path}.groups[{i}]")
            for j, site in enumerate(listed):
                if site not in site_names:
                    _fail(f"{path}.groups[{i}][{j}]", f"unknown site {site!r}")
                if site in seen:
                    _fail(f"{path}.groups[{i}][{j}]",
                          f"site {site!r} listed in two groups")
                seen.add(site)
            groups.append(tuple(listed))
        args = {"at": at, "heal_at": heal_at, "groups": tuple(groups)}
    elif kind == "loss_burst":
        _reject_unknown(doc, ("kind", "at", "duration", "loss"), path)
        args = {
            "at": _number(doc, "at", path, required=True, minimum=0.0),
            "duration": _number(doc, "duration", path, required=True,
                                exclusive_minimum=0.0),
            "loss": _number(doc, "loss", path, required=True, minimum=0.0,
                            below_one=True),
        }
    else:
        known = "crash, site_blast, churn, cascade, partition, loss_burst"
        _fail(f"{path}.kind", f"unknown fault kind {kind!r} (one of: {known})")
    return FaultSpec(kind=kind, args=args)


def _check_fault_windows(faults: List[FaultSpec], path: str) -> None:
    """Reject overlapping windows the substrate cannot compose.

    The network carries **one** partition at a time (``Network.partition``
    replaces the previous grouping) and one global loss probability, and a
    site already down cannot blast again — so overlapping windows of the
    same kind are almost certainly an authoring mistake; name the second
    entry's path.
    """
    def overlap(a0: float, a1: float, b0: float, b1: float) -> bool:
        return a0 < b1 and b0 < a1

    partitions: List[Tuple[float, float, int]] = []
    bursts: List[Tuple[float, float, int]] = []
    blasts: Dict[str, List[Tuple[float, float, int]]] = {}
    for i, fault in enumerate(faults):
        if fault.kind == "partition":
            window = (fault.args["at"], fault.args["heal_at"], i)
            for start, end, j in partitions:
                if overlap(window[0], window[1], start, end):
                    _fail(f"{path}[{i}].at",
                          f"partition window overlaps faults[{j}] "
                          f"({start:g}s..{end:g}s); the network supports one "
                          f"partition at a time")
            partitions.append(window)
        elif fault.kind == "loss_burst":
            window = (fault.args["at"],
                      fault.args["at"] + fault.args["duration"], i)
            for start, end, j in bursts:
                if overlap(window[0], window[1], start, end):
                    _fail(f"{path}[{i}].at",
                          f"loss burst overlaps faults[{j}] "
                          f"({start:g}s..{end:g}s); bursts share one global "
                          f"loss probability and must not nest")
            bursts.append(window)
        elif fault.kind == "site_blast":
            site = fault.args["site"]
            window = (fault.args["at"],
                      fault.args["at"] + fault.args["down_for"], i)
            for start, end, j in blasts.get(site, []):
                if overlap(window[0], window[1], start, end):
                    _fail(f"{path}[{i}].at",
                          f"site {site!r} blast overlaps faults[{j}] "
                          f"({start:g}s..{end:g}s); a site cannot go down "
                          f"twice at once")
            blasts.setdefault(site, []).append(window)


# -------------------------------------------------------------- fingerprint

_FINGERPRINT_VALUE_KEYS = ("events", "writes", "ops", "sent", "delivered",
                           "dropped", "state_hash")


def _parse_fingerprint(doc: Any, path: str) -> FingerprintSpec:
    doc = _mapping(doc, path)
    _reject_unknown(doc, ("seed", "horizon") + _FINGERPRINT_VALUE_KEYS, path)
    seed = _integer(doc, "seed", path, required=True)
    horizon = _number(doc, "horizon", path, required=True,
                      exclusive_minimum=0.0)
    values: Dict[str, Any] = {}
    for key in _FINGERPRINT_VALUE_KEYS:
        if key not in doc:
            continue
        value = doc[key]
        if key == "state_hash":
            if not isinstance(value, str):
                _fail(f"{path}.state_hash", "expected a string digest")
        elif not isinstance(value, int) or isinstance(value, bool):
            _fail(f"{path}.{key}", "expected an integer counter")
        values[key] = value
    return FingerprintSpec(seed=seed, horizon=horizon, values=values)


# --------------------------------------------------------------------- root

_TOP_KEYS = ("world", "name", "description", "defaults", "topology",
             "placement", "traffic", "faults", "services", "fingerprint")


def parse_world(doc: Mapping, *, source: Optional[str] = None) -> World:
    """Validate a world document and return its parsed form.

    Raises :class:`WorldValidationError` with the JSON path of the first
    offending field.
    """
    doc = _mapping(doc, "$")
    if "world" not in doc:
        _fail("$", "missing required key 'world' (the format version)")
    version = doc["world"]
    if not isinstance(version, int) or isinstance(version, bool):
        _fail("world", f"expected an integer version, got {type(version).__name__}")
    if version != WORLD_VERSION:
        _fail("world", f"unsupported world version {version} "
                       f"(this loader reads version {WORLD_VERSION})")
    _reject_unknown(doc, _TOP_KEYS, "$")

    name = _string(doc, "name", "$", required=True)
    description = _string(doc, "description", "$", default="")

    default_seed, default_duration = 7, 10.0
    if "defaults" in doc:
        defaults = _mapping(doc["defaults"], "defaults")
        _reject_unknown(defaults, ("seed", "duration"), "defaults")
        default_seed = _integer(defaults, "seed", "defaults", default=7)
        default_duration = _number(defaults, "duration", "defaults",
                                   default=10.0, exclusive_minimum=0.0)

    if "topology" not in doc:
        _fail("$", "missing required key 'topology'")
    topology = _parse_topology(doc["topology"], "topology")

    if "placement" not in doc:
        _fail("$", "missing required key 'placement'")
    objects = _parse_placement(doc["placement"], "placement", topology)

    traffic = (_parse_traffic(doc["traffic"], "traffic", topology)
               if "traffic" in doc else TrafficSpec())

    faults: List[FaultSpec] = []
    if "faults" in doc:
        raw_faults = doc["faults"]
        if not isinstance(raw_faults, list):
            _fail("faults", "expected an array of fault entries")
        faults = [_parse_fault(f, f"faults[{i}]", topology)
                  for i, f in enumerate(raw_faults)]
        _check_fault_windows(faults, "faults")

    services = ServicesSpec()
    if "services" in doc:
        raw = _mapping(doc["services"], "services")
        _reject_unknown(raw, ("gossip", "ransub_period"), "services")
        services = ServicesSpec(
            gossip=_boolean(raw, "gossip", "services"),
            ransub_period=_number(raw, "ransub_period", "services",
                                  default=5.0, exclusive_minimum=0.0))

    fingerprint = (_parse_fingerprint(doc["fingerprint"], "fingerprint")
                   if doc.get("fingerprint") is not None else None)

    return World(name=name, description=description, topology=topology,
                 objects=objects, traffic=traffic, faults=faults,
                 services=services, default_seed=default_seed,
                 default_duration=default_duration, fingerprint=fingerprint,
                 source=source)
