"""Compatibility shim: :class:`PeriodicTimer` moved to
:mod:`repro.transport.timers`.

The timer only ever needed ``clock.call_after`` returning a cancellable
handle, so it now lives at the transport seam where both the simulator and
the live backend share it.  This module keeps the historical import path
working.
"""

from __future__ import annotations

from repro.transport.timers import PeriodicTimer

__all__ = ["PeriodicTimer"]
