"""Message latency models.

A latency model turns a (source, destination) pair into a one-way message
delay.  Implementations:

* :class:`PlanetLabLatencyModel` — base delay from the synthetic continental
  :class:`~repro.sim.topology.Topology`, plus log-normal jitter to mimic the
  variable queueing the paper's Planet-Lab measurements would include.
* :class:`PerSourceLatencyModel` — the same topology-driven shape but with
  jitter drawn from a *per-source* RNG stream and clamped below, giving it a
  useful deterministic lower bound.  This is the model the space-partitioned
  backend (``repro.shard``) uses: per-source streams make delay sequences
  independent of how nodes are split across shards, and the positive
  ``min_delay`` provides the conservative lookahead window.
* :class:`HeterogeneousLatencyModel` — topology-driven delays with
  *per-site-pair* overrides (:class:`LinkProfile`): absolute or scaled base
  delay, per-link jitter, and a per-link loss annotation the world compiler
  feeds into :meth:`Network.set_loss_probability`.  This is how declarative
  worlds (``repro.worlds``) realise geo-WAN long-haul links and lossy
  edge/wifi-like tiers on top of one site layout.
* :class:`UniformLatencyModel` — a simple uniform-random delay useful for
  unit tests and for the Figure 2 tradeoff study where only relative protocol
  costs matter.

All models are deterministic given the simulator seed.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.sim.topology import Topology


class LatencyModel(abc.ABC):
    """Interface consumed by :class:`repro.sim.network.Network`."""

    @abc.abstractmethod
    def delay(self, src: str, dst: str) -> float:
        """Return a one-way delay sample in seconds for a message src→dst."""

    def expected_delay(self, src: str, dst: str) -> float:
        """Expected (mean) one-way delay; defaults to a single sample."""
        return self.delay(src, dst)

    def min_delay(self, site_a: Optional[str] = None,
                  site_b: Optional[str] = None) -> float:
        """Deterministic lower bound on ``delay(src, dst)`` for ``src != dst``.

        Contract: every sample ``delay(src, dst)`` with ``src != dst``, where
        ``src`` is at ``site_a`` and ``dst`` at ``site_b``, is ``>=
        min_delay(site_a, site_b)``.  With no arguments the bound must hold
        over *all* distinct pairs.  The base implementation returns ``0.0``
        (trivially safe); models with a known floor override this.  A
        positive bound is what makes a model usable as a conservative
        lookahead source for space-partitioned simulation.
        """
        return 0.0

    def homogeneous_delay(self, src: str, dsts) -> Optional[float]:
        """One delay covering every destination, or ``None`` if per-pair.

        A model may return a single sample when every destination in ``dsts``
        would receive the same delay (and sampling it consumes no per-pair
        randomness); :meth:`Network.send_many` then collapses the whole
        fan-out into one latency sample and one scheduled event.  Models with
        per-pair delays return ``None`` and the fan-out falls back to
        per-destination sends with unchanged RNG stream order.
        """
        return None


class UniformLatencyModel(LatencyModel):
    """One-way delays drawn uniformly from ``[low, high]`` for every pair."""

    def __init__(self, low: float = 0.01, high: float = 0.05,
                 rng: Optional[np.random.Generator] = None) -> None:
        if low < 0 or high < low:
            raise ValueError("require 0 <= low <= high")
        self.low = low
        self.high = high
        self._rng = rng or np.random.default_rng(0)

    def delay(self, src: str, dst: str) -> float:
        if src == dst:
            return 0.0
        return float(self._rng.uniform(self.low, self.high))

    def expected_delay(self, src: str, dst: str) -> float:
        if src == dst:
            return 0.0
        return (self.low + self.high) / 2.0

    def min_delay(self, site_a: Optional[str] = None,
                  site_b: Optional[str] = None) -> float:
        """Every distinct-pair sample is drawn from ``[low, high]``."""
        return self.low


class FixedLatencyModel(LatencyModel):
    """A constant one-way delay for every distinct pair (handy in tests)."""

    def __init__(self, delay: float = 0.02) -> None:
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self._delay = delay

    def delay(self, src: str, dst: str) -> float:
        return 0.0 if src == dst else self._delay

    def expected_delay(self, src: str, dst: str) -> float:
        return self.delay(src, dst)

    def min_delay(self, site_a: Optional[str] = None,
                  site_b: Optional[str] = None) -> float:
        return self._delay

    def homogeneous_delay(self, src: str, dsts) -> Optional[float]:
        """All pairs share the constant, so any fan-out is homogeneous."""
        if any(dst == src for dst in dsts):
            return None  # self-delivery is instant; keep per-dst semantics
        return self._delay


class PlanetLabLatencyModel(LatencyModel):
    """Topology-driven delays with multiplicative log-normal jitter.

    ``delay = base(src, dst) * lognormal(sigma) + minimum_floor`` where the
    log-normal is centred so its mean is 1.  ``sigma = 0.25`` gives a delay
    coefficient of variation of ~25 %, a reasonable stand-in for wide-area
    queueing variability on mid-2000s Planet-Lab paths.
    """

    def __init__(self, topology: Topology, rng: np.random.Generator, *,
                 jitter_sigma: float = 0.25, floor: float = 0.0005) -> None:
        if jitter_sigma < 0:
            raise ValueError("jitter_sigma must be non-negative")
        self.topology = topology
        self._rng = rng
        self.jitter_sigma = jitter_sigma
        self.floor = floor
        # mean of lognormal(mu, sigma) is exp(mu + sigma^2/2); choose mu so mean=1
        self._mu = -0.5 * jitter_sigma ** 2

    def delay(self, src: str, dst: str) -> float:
        if src == dst:
            return 0.0
        base = self.topology.one_way_delay(src, dst)
        if self.jitter_sigma == 0:
            return max(base, self.floor)
        jitter = float(self._rng.lognormal(self._mu, self.jitter_sigma))
        return max(base * jitter, self.floor)

    def expected_delay(self, src: str, dst: str) -> float:
        if src == dst:
            return 0.0
        return max(self.topology.one_way_delay(src, dst), self.floor)

    def min_delay(self, site_a: Optional[str] = None,
                  site_b: Optional[str] = None) -> float:
        """The honest bound is only ``floor``: log-normal jitter is unbounded
        below, so a sample can land arbitrarily close to zero times the base.
        Only the jitter-free special case can promise the topology floor.
        (For a usefully large bound use :class:`PerSourceLatencyModel`.)
        """
        if self.jitter_sigma == 0 and site_a is not None and site_b is not None:
            return max(self.topology.latency_floor(site_a, site_b), self.floor)
        if self.jitter_sigma == 0:
            return max(self.topology.latency_floor(), self.floor)
        return self.floor


@dataclass(frozen=True)
class LinkProfile:
    """Shape of one site-pair link in a heterogeneous topology.

    ``latency`` pins the one-way base delay absolutely (seconds); when
    ``None`` the topology's geometric site-pair delay is used, multiplied by
    ``latency_scale`` (an edge tier might scale it 2×).  ``jitter_sigma``
    overrides the model's default log-normal sigma for this link (wifi-like
    links jitter harder than backbone fibre).  ``loss`` is the per-link drop
    probability — the latency model itself never drops messages; the world
    compiler reads it and configures
    :meth:`~repro.sim.network.Network.set_loss_probability` per node pair.
    """

    latency: Optional[float] = None
    latency_scale: float = 1.0
    jitter_sigma: Optional[float] = None
    loss: float = 0.0

    def __post_init__(self) -> None:
        if self.latency is not None and self.latency < 0:
            raise ValueError("link latency must be non-negative")
        if self.latency_scale <= 0:
            raise ValueError("latency_scale must be positive")
        if self.jitter_sigma is not None and self.jitter_sigma < 0:
            raise ValueError("jitter_sigma must be non-negative")
        if not 0.0 <= self.loss < 1.0:
            raise ValueError("link loss must be in [0, 1)")


class HeterogeneousLatencyModel(LatencyModel):
    """Topology-driven delays with per-site-pair :class:`LinkProfile` overrides.

    The base shape matches :class:`PerSourceLatencyModel`: multiplicative
    log-normal jitter clamped below at ``min_jitter``, so every link has a
    *positive* deterministic delay floor (``min_delay`` stays usable as a
    conservative lookahead source).  On top of that, each (unordered) site
    pair may carry a :class:`LinkProfile` that pins or scales the base delay
    and widens or narrows the jitter — one model instance realises a whole
    heterogeneous WAN: intercontinental long-hauls, regional backbones and
    lossy last-mile tiers.

    Jitter is drawn from a single named stream (``latency.hetero``) injected
    via ``streams`` (the deployment builder sets it from the simulator's
    :class:`~repro.sim.random.RandomStreams`), keeping runs a pure function
    of the seed.
    """

    STREAM_NAME = "latency.hetero"

    def __init__(self, topology: Topology,
                 links: Optional[Mapping[Tuple[str, str], LinkProfile]] = None,
                 *, streams=None, jitter_sigma: float = 0.25,
                 floor: float = 0.0005, min_jitter: float = 0.5) -> None:
        if jitter_sigma < 0:
            raise ValueError("jitter_sigma must be non-negative")
        if not 0 < min_jitter <= 1.0:
            raise ValueError("min_jitter must be in (0, 1]")
        self.topology = topology
        self.jitter_sigma = jitter_sigma
        self.floor = floor
        self.min_jitter = min_jitter
        #: injected RandomStreams registry (see ``DeploymentBuilder``)
        self.streams = streams
        self._rng: Optional[np.random.Generator] = None
        self._links: Dict[Tuple[str, str], LinkProfile] = {}
        for (site_a, site_b), profile in dict(links or {}).items():
            for name in (site_a, site_b):
                if name not in topology.sites:
                    raise KeyError(f"link profile names unknown site {name!r}")
            if site_a == site_b:
                raise ValueError(
                    f"link profile ({site_a!r}, {site_b!r}) is intra-site; "
                    f"profiles describe links *between* sites")
            self._links[self._key(site_a, site_b)] = profile
        #: (site_a, site_b) -> (base_delay, sigma, mu) resolved lazily
        self._resolved: Dict[Tuple[str, str], Tuple[float, float, float]] = {}

    @staticmethod
    def _key(site_a: str, site_b: str) -> Tuple[str, str]:
        return (site_a, site_b) if site_a <= site_b else (site_b, site_a)

    def link_profile(self, site_a: str, site_b: str) -> Optional[LinkProfile]:
        """The profile configured for this (unordered) site pair, if any."""
        return self._links.get(self._key(site_a, site_b))

    def link_profiles(self) -> Dict[Tuple[str, str], LinkProfile]:
        """Every configured (unordered site pair) -> profile mapping."""
        return dict(self._links)

    def _resolve(self, site_a: str, site_b: str) -> Tuple[float, float, float]:
        """(base delay, jitter sigma, lognormal mu) for a site pair."""
        key = self._key(site_a, site_b)
        cached = self._resolved.get(key)
        if cached is None:
            base = self.topology.latency_floor(site_a, site_b)
            sigma = self.jitter_sigma
            profile = self._links.get(key)
            if profile is not None:
                if profile.latency is not None:
                    base = profile.latency
                else:
                    base *= profile.latency_scale
                if profile.jitter_sigma is not None:
                    sigma = profile.jitter_sigma
            cached = (base, sigma, -0.5 * sigma ** 2)
            self._resolved[key] = cached
        return cached

    def _generator(self) -> np.random.Generator:
        rng = self._rng
        if rng is None:
            if self.streams is None:
                raise RuntimeError(
                    "HeterogeneousLatencyModel has no RandomStreams attached; "
                    "pass streams= or set .streams before sampling delays")
            rng = self._rng = self.streams.stream(self.STREAM_NAME)
        return rng

    def delay(self, src: str, dst: str) -> float:
        if src == dst:
            return 0.0
        node_site = self.topology.node_site
        base, sigma, mu = self._resolve(node_site[src], node_site[dst])
        if sigma == 0:
            return max(base, self.floor)
        jitter = float(self._generator().lognormal(mu, sigma))
        if jitter < self.min_jitter:
            jitter = self.min_jitter
        return max(base * jitter, self.floor)

    def expected_delay(self, src: str, dst: str) -> float:
        if src == dst:
            return 0.0
        node_site = self.topology.node_site
        base, _, _ = self._resolve(node_site[src], node_site[dst])
        return max(base, self.floor)

    def min_delay(self, site_a: Optional[str] = None,
                  site_b: Optional[str] = None) -> float:
        if (site_a is None) != (site_b is None):
            raise ValueError("min_delay takes either two sites or none")
        if site_a is not None and site_b is not None:
            base, sigma, _ = self._resolve(site_a, site_b)
            scale = self.min_jitter if sigma else 1.0
            return max(base * scale, self.floor)
        # Global bound: the minimum over every occupied site pair (including
        # the intra-site delay whenever a site hosts two or more nodes),
        # each scaled by its own jitter clamp.
        counts: Dict[str, int] = {}
        for site in self.topology.node_site.values():
            counts[site] = counts.get(site, 0) + 1
        occupied = sorted(counts)
        floors = []
        for i, a in enumerate(occupied):
            if counts[a] >= 2:
                base, sigma, _ = self._resolve(a, a)
                floors.append(base * (self.min_jitter if sigma else 1.0))
            for b in occupied[i + 1:]:
                base, sigma, _ = self._resolve(a, b)
                floors.append(base * (self.min_jitter if sigma else 1.0))
        return max(min(floors), self.floor) if floors else self.floor


class PerSourceLatencyModel(LatencyModel):
    """Topology-driven jittered delays that are shard-decomposition-safe.

    Two deliberate differences from :class:`PlanetLabLatencyModel` make this
    the model for space-partitioned runs:

    * **Per-source RNG streams.**  Each source node draws its jitter from its
      own named stream (``latency.src.<node>``), derived from the simulator
      seed by name (see :class:`~repro.sim.random.RandomStreams`).  A node's
      delay sequence then depends only on its *own* send history — never on
      interleaving with other nodes — so it is identical whether the node
      runs alongside all others in one process or alone in a shard.
    * **Clamped jitter.**  The multiplicative log-normal is clamped below at
      ``min_jitter`` (default 0.5, affecting ~0.3 % of sigma=0.25 samples),
      which turns the topology's site-pair base delay into a *positive*
      deterministic bound: ``min_delay(a, b) = max(base(a, b) * min_jitter,
      floor)``.  That bound is the conservative lookahead window.
    """

    #: stream-name prefix; the per-node stream is ``latency.src.<node_id>``
    STREAM_PREFIX = "latency.src"

    def __init__(self, topology: Topology, streams=None, *,
                 jitter_sigma: float = 0.25, floor: float = 0.0005,
                 min_jitter: float = 0.5) -> None:
        if jitter_sigma < 0:
            raise ValueError("jitter_sigma must be non-negative")
        if not 0 < min_jitter <= 1.0:
            raise ValueError("min_jitter must be in (0, 1]")
        self.topology = topology
        self.jitter_sigma = jitter_sigma
        self.floor = floor
        self.min_jitter = min_jitter
        self._mu = -0.5 * jitter_sigma ** 2
        #: the RandomStreams registry delays are drawn from; deployments
        #: inject the simulator's registry here (see ``_network_pass``)
        self.streams = streams
        self._rngs: Dict[str, np.random.Generator] = {}

    def _source_rng(self, src: str) -> np.random.Generator:
        rng = self._rngs.get(src)
        if rng is None:
            if self.streams is None:
                raise RuntimeError(
                    "PerSourceLatencyModel has no RandomStreams attached; "
                    "pass streams= or set .streams before sampling delays")
            rng = self._rngs[src] = self.streams.stream(
                f"{self.STREAM_PREFIX}.{src}")
        return rng

    def delay(self, src: str, dst: str) -> float:
        if src == dst:
            return 0.0
        base = self.topology.one_way_delay(src, dst)
        if self.jitter_sigma == 0:
            return max(base, self.floor)
        jitter = float(self._source_rng(src).lognormal(self._mu,
                                                       self.jitter_sigma))
        if jitter < self.min_jitter:
            jitter = self.min_jitter
        return max(base * jitter, self.floor)

    def expected_delay(self, src: str, dst: str) -> float:
        # The clamp nudges the true mean slightly above base; base is close
        # enough for planning purposes and keeps this sampling-free.
        if src == dst:
            return 0.0
        return max(self.topology.one_way_delay(src, dst), self.floor)

    def min_delay(self, site_a: Optional[str] = None,
                  site_b: Optional[str] = None) -> float:
        if site_a is not None or site_b is not None:
            base = self.topology.latency_floor(site_a, site_b)
        else:
            base = self.topology.latency_floor()
        scale = self.min_jitter if self.jitter_sigma else 1.0
        return max(base * scale, self.floor)
