"""Message latency models.

A latency model turns a (source, destination) pair into a one-way message
delay.  Two implementations are provided:

* :class:`PlanetLabLatencyModel` — base delay from the synthetic continental
  :class:`~repro.sim.topology.Topology`, plus log-normal jitter to mimic the
  variable queueing the paper's Planet-Lab measurements would include.
* :class:`UniformLatencyModel` — a simple uniform-random delay useful for
  unit tests and for the Figure 2 tradeoff study where only relative protocol
  costs matter.

Both models are deterministic given the simulator seed.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.sim.topology import Topology


class LatencyModel(abc.ABC):
    """Interface consumed by :class:`repro.sim.network.Network`."""

    @abc.abstractmethod
    def delay(self, src: str, dst: str) -> float:
        """Return a one-way delay sample in seconds for a message src→dst."""

    def expected_delay(self, src: str, dst: str) -> float:
        """Expected (mean) one-way delay; defaults to a single sample."""
        return self.delay(src, dst)

    def homogeneous_delay(self, src: str, dsts) -> Optional[float]:
        """One delay covering every destination, or ``None`` if per-pair.

        A model may return a single sample when every destination in ``dsts``
        would receive the same delay (and sampling it consumes no per-pair
        randomness); :meth:`Network.send_many` then collapses the whole
        fan-out into one latency sample and one scheduled event.  Models with
        per-pair delays return ``None`` and the fan-out falls back to
        per-destination sends with unchanged RNG stream order.
        """
        return None


class UniformLatencyModel(LatencyModel):
    """One-way delays drawn uniformly from ``[low, high]`` for every pair."""

    def __init__(self, low: float = 0.01, high: float = 0.05,
                 rng: Optional[np.random.Generator] = None) -> None:
        if low < 0 or high < low:
            raise ValueError("require 0 <= low <= high")
        self.low = low
        self.high = high
        self._rng = rng or np.random.default_rng(0)

    def delay(self, src: str, dst: str) -> float:
        if src == dst:
            return 0.0
        return float(self._rng.uniform(self.low, self.high))

    def expected_delay(self, src: str, dst: str) -> float:
        if src == dst:
            return 0.0
        return (self.low + self.high) / 2.0


class FixedLatencyModel(LatencyModel):
    """A constant one-way delay for every distinct pair (handy in tests)."""

    def __init__(self, delay: float = 0.02) -> None:
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self._delay = delay

    def delay(self, src: str, dst: str) -> float:
        return 0.0 if src == dst else self._delay

    def expected_delay(self, src: str, dst: str) -> float:
        return self.delay(src, dst)

    def homogeneous_delay(self, src: str, dsts) -> Optional[float]:
        """All pairs share the constant, so any fan-out is homogeneous."""
        if any(dst == src for dst in dsts):
            return None  # self-delivery is instant; keep per-dst semantics
        return self._delay


class PlanetLabLatencyModel(LatencyModel):
    """Topology-driven delays with multiplicative log-normal jitter.

    ``delay = base(src, dst) * lognormal(sigma) + minimum_floor`` where the
    log-normal is centred so its mean is 1.  ``sigma = 0.25`` gives a delay
    coefficient of variation of ~25 %, a reasonable stand-in for wide-area
    queueing variability on mid-2000s Planet-Lab paths.
    """

    def __init__(self, topology: Topology, rng: np.random.Generator, *,
                 jitter_sigma: float = 0.25, floor: float = 0.0005) -> None:
        if jitter_sigma < 0:
            raise ValueError("jitter_sigma must be non-negative")
        self.topology = topology
        self._rng = rng
        self.jitter_sigma = jitter_sigma
        self.floor = floor
        # mean of lognormal(mu, sigma) is exp(mu + sigma^2/2); choose mu so mean=1
        self._mu = -0.5 * jitter_sigma ** 2

    def delay(self, src: str, dst: str) -> float:
        if src == dst:
            return 0.0
        base = self.topology.one_way_delay(src, dst)
        if self.jitter_sigma == 0:
            return max(base, self.floor)
        jitter = float(self._rng.lognormal(self._mu, self.jitter_sigma))
        return max(base * jitter, self.floor)

    def expected_delay(self, src: str, dst: str) -> float:
        if src == dst:
            return 0.0
        return max(self.topology.one_way_delay(src, dst), self.floor)
