"""Simulated node: the discrete-event backend of the endpoint seam.

All the protocol plumbing — handler dispatch, the request/response RPC
layer, crash-stop lifecycle with adopted restartable timers — lives in the
backend-neutral :class:`~repro.transport.endpoint.ProtocolEndpoint`.
:class:`Node` binds it to the simulator and adds the one genuinely
simulated concern: a local :class:`~repro.sim.clock.DriftingClock`, so
``local_time()`` reads a skewed clock the way a real host's would drift.

``RPCError`` and ``unwrap_response`` are re-exported from the seam for
backward compatibility with pre-seam imports.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.clock import ClockModel, DriftingClock
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.transport.endpoint import (ProtocolEndpoint, _PendingRequest,
                                      unwrap_response)
from repro.transport.errors import RPCError

__all__ = ["Node", "RPCError", "unwrap_response", "_PendingRequest"]


class Node(ProtocolEndpoint):
    """A host participating in the simulated deployment."""

    def __init__(self, sim: Simulator, network: Network, node_id: str, *,
                 clock_model: Optional[ClockModel] = None,
                 processing_delay: Optional[float] = None) -> None:
        #: backward-compatible aliases — the scheduling clock *is* the
        #: simulator and the transport *is* the simulated network, and a
        #: decade of call sites (and tests) spell them ``sim``/``network``
        self.sim = sim
        self.network = network
        model = clock_model if clock_model is not None else ClockModel()
        self.local_clock = DriftingClock(node_id, model,
                                         sim.random.stream(f"clock.{node_id}"))
        super().__init__(sim, network, node_id,
                         processing_delay=processing_delay)

    # ------------------------------------------------------------------ time
    def local_time(self) -> float:
        """This node's (possibly skewed) clock reading."""
        return self.local_clock.read(self.sim.now)
