"""Deterministic named random streams.

Every stochastic component in the reproduction (latency jitter, RanSub
sampling, gossip fanout selection, workload generation, clock drift) obtains
its own :class:`numpy.random.Generator` from a shared :class:`RandomStreams`
instance keyed by a stable string name.  Two runs with the same seed therefore
produce identical event sequences regardless of the order in which components
request their streams.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


class RandomStreams:
    """A factory of independent, reproducible random generators."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator associated with ``name`` (created on demand).

        The stream's seed is derived from the master seed and a SHA-256 hash
        of the name, so stream identity depends only on (seed, name) and not
        on creation order.
        """
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode("utf-8")).digest()
            child_seed = int.from_bytes(digest[:8], "little")
            self._streams[name] = np.random.default_rng(child_seed)
        return self._streams[name]

    def spawn(self, name: str) -> "RandomStreams":
        """Create a nested stream factory (e.g. one per node)."""
        digest = hashlib.sha256(f"{self.seed}:{name}".encode("utf-8")).digest()
        return RandomStreams(int.from_bytes(digest[8:16], "little"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStreams(seed={self.seed}, streams={sorted(self._streams)})"
