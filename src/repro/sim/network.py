"""Simulated message-passing network.

Every protocol message in the reproduction — detection probes, gossip
digests, call-for-attention requests, resolution visits, anti-entropy
exchanges of the baselines — is sent through :meth:`Network.send`.  The
network

* samples a one-way delay from the configured :class:`LatencyModel`,
* optionally drops the message according to a loss probability,
* delivers it by invoking the destination node's ``deliver`` method at the
  delayed time, and
* records per-protocol counters (message count and payload bytes), which is
  exactly what Table 3 of the paper reports ("overhead in number of
  exchanged messages").

Message "size" is an abstract byte count supplied by the sender (the paper
assumes ~1 KB per message when converting counts to bandwidth).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.sim.engine import Simulator
from repro.sim.latency import LatencyModel


@dataclass
class Message:
    """A protocol message in flight."""

    msg_id: int
    src: str
    dst: str
    protocol: str
    msg_type: str
    payload: Any
    size_bytes: int
    sent_at: float
    deliver_at: float


@dataclass
class NetworkStats:
    """Aggregated message accounting, grouped by protocol label."""

    sent: Dict[str, int] = field(default_factory=dict)
    delivered: Dict[str, int] = field(default_factory=dict)
    dropped: Dict[str, int] = field(default_factory=dict)
    bytes_sent: Dict[str, int] = field(default_factory=dict)

    def record_sent(self, protocol: str, size_bytes: int) -> None:
        self.sent[protocol] = self.sent.get(protocol, 0) + 1
        self.bytes_sent[protocol] = self.bytes_sent.get(protocol, 0) + size_bytes

    def record_delivered(self, protocol: str) -> None:
        self.delivered[protocol] = self.delivered.get(protocol, 0) + 1

    def record_dropped(self, protocol: str) -> None:
        self.dropped[protocol] = self.dropped.get(protocol, 0) + 1

    def total_sent(self, prefix: str = "") -> int:
        """Total messages sent whose protocol label starts with ``prefix``."""
        return sum(v for k, v in self.sent.items() if k.startswith(prefix))

    def total_bytes(self, prefix: str = "") -> int:
        return sum(v for k, v in self.bytes_sent.items() if k.startswith(prefix))

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        """Return a plain-dict copy (useful for diffing before/after a phase)."""
        return {
            "sent": dict(self.sent),
            "delivered": dict(self.delivered),
            "dropped": dict(self.dropped),
            "bytes_sent": dict(self.bytes_sent),
        }


class Network:
    """Delivers messages between registered nodes with latency and loss."""

    #: default payload size assumed by the paper when converting message
    #: counts into bandwidth (Section 6.3.1: "each packet has size of 1KB").
    DEFAULT_MESSAGE_BYTES = 1024

    def __init__(self, sim: Simulator, latency: LatencyModel, *,
                 loss_probability: float = 0.0) -> None:
        if not 0.0 <= loss_probability < 1.0:
            raise ValueError("loss_probability must be in [0, 1)")
        self.sim = sim
        self.latency = latency
        self.loss_probability = loss_probability
        self.stats = NetworkStats()
        self._nodes: Dict[str, Any] = {}
        self._msg_counter = itertools.count()
        self._loss_rng = sim.random.stream("network.loss")
        self._in_flight: List[Message] = []
        #: observers called with every delivered message (used by tests)
        self.delivery_hooks: List[Callable[[Message], None]] = []

    # ------------------------------------------------------------ membership
    def register(self, node: Any) -> None:
        """Register a node object exposing ``node_id`` and ``deliver(message)``."""
        node_id = node.node_id
        if node_id in self._nodes:
            raise ValueError(f"node {node_id!r} already registered")
        self._nodes[node_id] = node

    def unregister(self, node_id: str) -> None:
        self._nodes.pop(node_id, None)

    @property
    def node_ids(self) -> List[str]:
        return list(self._nodes)

    def node(self, node_id: str) -> Any:
        return self._nodes[node_id]

    # ---------------------------------------------------------------- sending
    def send(self, src: str, dst: str, *, protocol: str, msg_type: str,
             payload: Any = None, size_bytes: Optional[int] = None) -> Optional[Message]:
        """Send a message; returns the in-flight message or ``None`` if dropped."""
        if dst not in self._nodes:
            raise KeyError(f"destination node {dst!r} is not registered")
        if src not in self._nodes:
            raise KeyError(f"source node {src!r} is not registered")
        size = self.DEFAULT_MESSAGE_BYTES if size_bytes is None else int(size_bytes)
        self.stats.record_sent(protocol, size)

        if self.loss_probability > 0 and self._loss_rng.random() < self.loss_probability:
            self.stats.record_dropped(protocol)
            return None

        delay = self.latency.delay(src, dst)
        now = self.sim.now
        message = Message(
            msg_id=next(self._msg_counter), src=src, dst=dst, protocol=protocol,
            msg_type=msg_type, payload=payload, size_bytes=size,
            sent_at=now, deliver_at=now + delay)
        self.sim.call_after(delay, lambda: self._deliver(message),
                            priority=Simulator.PRIORITY_NETWORK,
                            label=f"deliver:{protocol}:{msg_type}")
        return message

    def _deliver(self, message: Message) -> None:
        node = self._nodes.get(message.dst)
        if node is None:
            # Destination departed while the message was in flight; drop it.
            self.stats.record_dropped(message.protocol)
            return
        self.stats.record_delivered(message.protocol)
        for hook in self.delivery_hooks:
            hook(message)
        node.deliver(message)

    # ------------------------------------------------------------- accounting
    def messages_sent(self, protocol_prefix: str = "") -> int:
        return self.stats.total_sent(protocol_prefix)

    def bytes_sent(self, protocol_prefix: str = "") -> int:
        return self.stats.total_bytes(protocol_prefix)

    def expected_rtt(self, a: str, b: str) -> float:
        """Expected round-trip time between two nodes (seconds)."""
        return (self.latency.expected_delay(a, b) +
                self.latency.expected_delay(b, a))
