"""Simulated message-passing network.

Every protocol message in the reproduction — detection probes, gossip
digests, call-for-attention requests, resolution visits, anti-entropy
exchanges of the baselines — is sent through :meth:`Network.send`.  The
network

* samples a one-way delay from the configured :class:`LatencyModel`,
* optionally drops the message according to a loss probability,
* delivers it by invoking the destination node's ``deliver`` method at the
  delayed time, and
* records per-protocol counters (message count and payload bytes), which is
  exactly what Table 3 of the paper reports ("overhead in number of
  exchanged messages").

Message "size" is an abstract byte count supplied by the sender (the paper
assumes ~1 KB per message when converting counts to bandwidth).

Hot-path notes: delivery events are scheduled by binding the network's own
``_deliver`` method with the message as the event argument — no capturing
lambda per send — and the engine recycles those events through its free
list.  Broadcast-style senders (detection digests, gossip fan-out) should
use :meth:`send_many`, which shares one payload across the fan-out and, when
the latency model reports a homogeneous delay for the whole destination set,
collapses the broadcast into a single latency sample and a single heap push.

Failure model (crash-stop with recovery): a send whose source or destination
is a *previously registered* node that has since crashed, or whose endpoints
sit in different network partitions (:meth:`Network.partition`), is counted
as a drop — exactly like the in-flight "destination departed" path of
``_deliver`` — and never raises.  Sending to an id that was *never*
registered still raises ``KeyError`` while ``strict`` is set (the default),
because that is a wiring bug, not a simulated fault.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.sim.engine import Simulator
from repro.sim.latency import LatencyModel
from repro.transport.message import Message, NetworkStats

__all__ = ["Message", "Network", "NetworkStats", "SimTransport"]


class Network:
    """Delivers messages between registered nodes with latency and loss."""

    #: default payload size assumed by the paper when converting message
    #: counts into bandwidth (Section 6.3.1: "each packet has size of 1KB").
    DEFAULT_MESSAGE_BYTES = 1024

    def __init__(self, sim: Simulator, latency: LatencyModel, *,
                 loss_probability: float = 0.0, strict: bool = True) -> None:
        if not 0.0 <= loss_probability < 1.0:
            raise ValueError("loss_probability must be in [0, 1)")
        self.sim = sim
        self.latency = latency
        self.loss_probability = loss_probability
        #: raise ``KeyError`` for endpoints that were never registered (a
        #: wiring bug); sends involving *known-but-crashed* nodes are always
        #: counted drops regardless of this flag
        self.strict = strict
        self.stats = NetworkStats()
        self._nodes: Dict[str, Any] = {}
        #: every id ever registered — crash-stop nodes unregister from
        #: ``_nodes`` but remain known, so sends to them drop instead of raise
        self._known: set = set()
        #: node_id -> partition group index while partitioned, else None
        self._partition_of: Optional[Dict[str, int]] = None
        #: (src, dst) -> extra per-link loss probability (world lossy tiers);
        #: empty for homogeneous networks, so the hot path pays one falsy
        #: check.  Per-link drops are accounted under the "link-loss" reason,
        #: separate from the global "loss" bucket.
        self._pair_loss: Dict[tuple, float] = {}
        self._next_msg_id = 0
        self._loss_rng = sim.random.stream("network.loss")
        #: (protocol, msg_type) -> interned delivery-event label; the pairs
        #: form a small fixed set, so labels are built once, not per send
        self._labels: Dict[tuple, str] = {}
        #: observers called with every delivered message (used by tests)
        self.delivery_hooks: List[Callable[[Message], None]] = []

    # ------------------------------------------------------------ membership
    def register(self, node: Any) -> None:
        """Register a node object exposing ``node_id`` and ``deliver(message)``."""
        node_id = node.node_id
        if node_id in self._nodes:
            raise ValueError(f"node {node_id!r} already registered")
        self._nodes[node_id] = node
        self._known.add(node_id)

    def unregister(self, node_id: str) -> None:
        self._nodes.pop(node_id, None)

    @property
    def node_ids(self) -> List[str]:
        return list(self._nodes)

    def node(self, node_id: str) -> Any:
        return self._nodes[node_id]

    def has_node(self, node_id: str) -> bool:
        """True while ``node_id`` is registered (i.e. currently reachable)."""
        return node_id in self._nodes

    # ------------------------------------------------------------ partitions
    def partition(self, groups: Sequence[Sequence[str]]) -> None:
        """Split the network: messages only flow within the same group.

        Every listed node belongs to exactly one group; nodes not listed in
        any group form one implicit extra group together.  Messages in flight
        are checked again at delivery time, so a partition takes effect
        immediately even for already-scheduled deliveries.
        """
        partition_of: Dict[str, int] = {}
        for index, group in enumerate(groups):
            for node_id in group:
                if node_id in partition_of:
                    raise ValueError(f"node {node_id!r} listed in two groups")
                if self.strict and node_id not in self._known:
                    # A typo'd id would silently land the intended node in
                    # the implicit group; wiring bugs raise (same rule as
                    # sending to a never-registered id).
                    raise KeyError(f"partition group names unknown node {node_id!r}")
                partition_of[node_id] = index
        self._partition_of = partition_of

    def heal(self) -> None:
        """Remove any active partition (idempotent)."""
        self._partition_of = None

    @property
    def partitioned(self) -> bool:
        return self._partition_of is not None

    def reachable(self, src: str, dst: str) -> bool:
        """True when no partition separates ``src`` and ``dst``."""
        partition_of = self._partition_of
        if partition_of is None:
            return True
        default = len(partition_of)  # implicit group for unlisted nodes
        return partition_of.get(src, default) == partition_of.get(dst, default)

    # ------------------------------------------------------------------ loss
    def set_loss_probability(self, loss_probability: float, *,
                             src: Optional[str] = None,
                             dst: Optional[str] = None) -> None:
        """Change the message loss probability, globally or per link.

        With no endpoints this sets the global per-message loss (e.g. for a
        loss burst).  With both ``src`` and ``dst`` it sets an *additional*
        per-link probability for messages src→dst — the mechanism world
        lossy tiers (edge/wifi-like links) are built on.  A per-link draw
        happens only for messages that survive the global draw, and its
        drops are accounted under the ``"link-loss"`` reason so lossy-tier
        behaviour is visible separately in :attr:`NetworkStats.drop_reasons`.
        Setting a link's probability to 0 removes its entry.  Directions are
        independent: configure (a, b) and (b, a) separately for a symmetric
        lossy link.
        """
        if not 0.0 <= loss_probability < 1.0:
            raise ValueError("loss_probability must be in [0, 1)")
        if (src is None) != (dst is None):
            raise ValueError("per-link loss needs both src and dst (or neither)")
        if src is None:
            self.loss_probability = loss_probability
            return
        if self.strict:
            for node_id in (src, dst):
                if node_id not in self._known:
                    raise KeyError(
                        f"per-link loss names unknown node {node_id!r}")
        if loss_probability == 0.0:
            self._pair_loss.pop((src, dst), None)
        else:
            self._pair_loss[(src, dst)] = loss_probability

    def link_loss(self, src: str, dst: str) -> float:
        """The per-link loss probability configured for src→dst (0 if none)."""
        return self._pair_loss.get((src, dst), 0.0)

    # ---------------------------------------------------------------- sending
    def _unreachable_reason(self, src: str, dst: str) -> Optional[str]:
        """Why a send src→dst cannot go through right now, or ``None``.

        Raises ``KeyError`` for endpoints that were never registered while
        ``strict`` is set; crashed (known but unregistered) endpoints and
        partitioned pairs yield a drop reason instead.
        """
        nodes = self._nodes
        if dst not in nodes:
            if self.strict and dst not in self._known:
                raise KeyError(f"destination node {dst!r} is not registered")
            return "dst-down"
        if src not in nodes:
            if self.strict and src not in self._known:
                raise KeyError(f"source node {src!r} is not registered")
            return "src-down"
        if self._partition_of is not None and not self.reachable(src, dst):
            return "partition"
        return None

    def _drop(self, protocol: str, size: int, reason: str) -> None:
        """Account one message as sent-then-dropped for ``reason``."""
        stats = self.stats
        stats.sent[protocol] += 1
        stats.bytes_sent[protocol] += size
        stats.dropped[protocol] += 1
        stats.drop_reasons[reason] += 1

    def send(self, src: str, dst: str, *, protocol: str, msg_type: str,
             payload: Any = None, size_bytes: Optional[int] = None) -> Optional[Message]:
        """Send a message; returns the in-flight message or ``None`` if dropped."""
        nodes = self._nodes
        if dst not in nodes or src not in nodes or self._partition_of is not None:
            reason = self._unreachable_reason(src, dst)
            if reason is not None:
                size = (self.DEFAULT_MESSAGE_BYTES if size_bytes is None
                        else int(size_bytes))
                self._drop(protocol, size, reason)
                return None
        size = self.DEFAULT_MESSAGE_BYTES if size_bytes is None else int(size_bytes)
        stats = self.stats
        stats.sent[protocol] += 1
        stats.bytes_sent[protocol] += size

        if self.loss_probability > 0 and self._loss_rng.random() < self.loss_probability:
            stats.dropped[protocol] += 1
            stats.drop_reasons["loss"] += 1
            return None
        if self._pair_loss:
            pair_loss = self._pair_loss.get((src, dst))
            if pair_loss is not None and self._loss_rng.random() < pair_loss:
                stats.dropped[protocol] += 1
                stats.drop_reasons["link-loss"] += 1
                return None

        delay = self.latency.delay(src, dst)
        now = self.sim.now
        msg_id = self._next_msg_id
        self._next_msg_id = msg_id + 1
        message = Message(
            msg_id=msg_id, src=src, dst=dst, protocol=protocol,
            msg_type=msg_type, payload=payload, size_bytes=size,
            sent_at=now, deliver_at=now + delay)
        self.sim.call_after(delay, self._deliver, arg=message, recyclable=True,
                            priority=Simulator.PRIORITY_NETWORK,
                            label=self._label(protocol, msg_type))
        return message

    def _label(self, protocol: str, msg_type: str) -> str:
        key = (protocol, msg_type)
        label = self._labels.get(key)
        if label is None:
            label = self._labels[key] = f"deliver:{protocol}:{msg_type}"
        return label

    def send_many(self, src: str, dsts: Sequence[str], *, protocol: str,
                  msg_type: str, payload: Any = None,
                  size_bytes: Optional[int] = None) -> List[Message]:
        """Fan one payload out to many destinations; returns in-flight messages.

        The payload object is shared across the fan-out (receivers treat
        payloads as read-only), so a top-layer broadcast allocates one payload
        instead of one per peer.  When the latency model reports a single
        homogeneous delay for the whole destination set, the broadcast costs
        one latency sample and one heap push; otherwise each destination is
        sent to in order with exactly the per-destination latency samples a
        sequence of :meth:`send` calls would have drawn, preserving RNG
        stream order and event-for-event determinism.
        """
        if not dsts:
            return []
        nodes = self._nodes
        if (src not in nodes or self._partition_of is not None
                or any(dst not in nodes for dst in dsts)):
            # Failure-aware slow path: drop per-destination (or everything
            # when the source itself is down), keeping only reachable ones.
            size = (self.DEFAULT_MESSAGE_BYTES if size_bytes is None
                    else int(size_bytes))
            if src not in nodes:
                if self.strict and src not in self._known:
                    raise KeyError(f"source node {src!r} is not registered")
                for _ in dsts:
                    self._drop(protocol, size, "src-down")
                return []
            live = []
            for dst in dsts:
                reason = self._unreachable_reason(src, dst)
                if reason is None:
                    live.append(dst)
                else:
                    self._drop(protocol, size, reason)
            if not live:
                return []
            dsts = live
        delay = (None if self.loss_probability > 0 or self._pair_loss
                 else self.latency.homogeneous_delay(src, dsts))
        if delay is None:
            return [m for dst in dsts
                    if (m := self.send(src, dst, protocol=protocol,
                                       msg_type=msg_type, payload=payload,
                                       size_bytes=size_bytes)) is not None]

        size = self.DEFAULT_MESSAGE_BYTES if size_bytes is None else int(size_bytes)
        stats = self.stats
        count = len(dsts)
        stats.sent[protocol] += count
        stats.bytes_sent[protocol] += size * count
        now = self.sim.now
        deliver_at = now + delay
        msg_id = self._next_msg_id
        self._next_msg_id = msg_id + count
        batch = [Message(msg_id=msg_id + i, src=src, dst=dst, protocol=protocol,
                         msg_type=msg_type, payload=payload, size_bytes=size,
                         sent_at=now, deliver_at=deliver_at)
                 for i, dst in enumerate(dsts)]
        self.sim.call_after(delay, self._deliver_batch, arg=batch,
                            recyclable=True, priority=Simulator.PRIORITY_NETWORK,
                            label=self._label(protocol, msg_type))
        return batch

    def _deliver(self, message: Message) -> None:
        node = self._nodes.get(message.dst)
        if node is None:
            # Destination departed while the message was in flight; drop it.
            self.stats.dropped[message.protocol] += 1
            self.stats.drop_reasons["departed"] += 1
            return
        if (self._partition_of is not None
                and not self.reachable(message.src, message.dst)):
            # A partition formed while the message was in flight.
            self.stats.dropped[message.protocol] += 1
            self.stats.drop_reasons["partition"] += 1
            return
        self.stats.delivered[message.protocol] += 1
        if self.delivery_hooks:
            for hook in self.delivery_hooks:
                hook(message)
        node.deliver(message)

    def _deliver_batch(self, batch: List[Message]) -> None:
        for message in batch:
            self._deliver(message)

    # ------------------------------------------------------------- accounting
    def messages_sent(self, protocol_prefix: str = "") -> int:
        return self.stats.total_sent(protocol_prefix)

    def bytes_sent(self, protocol_prefix: str = "") -> int:
        return self.stats.total_bytes(protocol_prefix)

    def expected_rtt(self, a: str, b: str) -> float:
        """Expected round-trip time between two nodes (seconds)."""
        return (self.latency.expected_delay(a, b) +
                self.latency.expected_delay(b, a))


#: The simulated :class:`Network` *is* the discrete-event implementation of
#: the :class:`repro.transport.api.Transport` seam; ``repro.live`` provides
#: the socket-backed counterpart.
SimTransport = Network
