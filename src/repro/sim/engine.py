"""Discrete-event simulation engine.

The engine maintains a priority queue of timestamped events.  Each event
carries a callback; running the simulation pops events in time order and
invokes the callbacks, which may in turn schedule further events.  Ties in
time are broken by a monotonically increasing sequence number so that the
execution order is fully deterministic.

Simulated time is a ``float`` measured in **seconds**, matching the paper's
reporting units (update period of 5 s, background-resolution periods of
20 s / 40 s, resolution delays reported in milliseconds).
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation engine."""


@dataclass(order=True)
class Event:
    """A single scheduled event.

    Events are ordered by ``(time, priority, seq)``.  ``priority`` allows
    infrastructure events (e.g. message deliveries) to be ordered relative to
    application timers firing at the same instant; lower values run first.
    """

    time: float
    priority: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)
    #: owning queue while the event is pending; cleared once executed so a
    #: late ``cancel()`` on an already-run event is a no-op
    queue: Optional["EventQueue"] = field(default=None, compare=False, repr=False)

    def cancel(self) -> None:
        """Cancel the event; it will be skipped when popped."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.queue is not None:
            self.queue._note_cancelled()


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects.

    Cancellation is lazy (cancelled events stay in the heap until popped),
    but the live count is maintained eagerly so ``len(queue)`` is O(1), and
    the heap is compacted whenever cancelled entries outnumber live ones, so
    long runs with many cancelled timers do not leak memory.
    """

    #: below this heap size compaction is not worth the heapify cost
    COMPACTION_MIN_SIZE = 64

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0
        self._cancelled = 0

    def __len__(self) -> int:
        return self._live

    @property
    def cancelled_pending(self) -> int:
        """Cancelled events still occupying heap slots (for introspection)."""
        return self._cancelled

    def push(self, time: float, callback: Callable[[], None], *, priority: int = 0,
             label: str = "") -> Event:
        """Schedule ``callback`` at ``time`` and return the event handle."""
        if math.isnan(time):
            raise SimulationError("cannot schedule an event at NaN time")
        event = Event(time=time, priority=priority, seq=next(self._counter),
                      callback=callback, label=label, queue=self)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def _note_cancelled(self) -> None:
        self._live -= 1
        self._cancelled += 1
        if (self._cancelled > self._live
                and len(self._heap) >= self.COMPACTION_MIN_SIZE):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify the survivors."""
        self._heap = [e for e in self._heap if not e.cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0

    def pop(self) -> Optional[Event]:
        """Pop the next non-cancelled event, or ``None`` if the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                self._cancelled -= 1
                continue
            self._live -= 1
            event.queue = None
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the timestamp of the next pending event without popping it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
            self._cancelled -= 1
        if self._heap:
            return self._heap[0].time
        return None


class Simulator:
    """The discrete-event simulator driving every experiment in this repo.

    Typical usage::

        sim = Simulator(seed=7)
        sim.call_at(1.0, lambda: print("hello at t=1"))
        sim.run(until=10.0)

    The simulator also owns the shared :class:`~repro.sim.random.RandomStreams`
    instance so that all stochastic components (latency jitter, gossip fanout
    choices, workload generators) derive their randomness from a single seed.
    """

    #: priority used for network message delivery events
    PRIORITY_NETWORK = -1
    #: priority used for ordinary timers
    PRIORITY_TIMER = 0

    def __init__(self, seed: int = 0) -> None:
        from repro.sim.random import RandomStreams

        self._queue = EventQueue()
        self._now = 0.0
        self._running = False
        self._stopped = False
        self.seed = seed
        self.random = RandomStreams(seed)
        self._event_count = 0

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far."""
        return self._event_count

    # ------------------------------------------------------------- scheduling
    def call_at(self, time: float, callback: Callable[[], None], *,
                priority: int = PRIORITY_TIMER, label: str = "") -> Event:
        """Schedule ``callback`` to run at absolute simulated time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event in the past (now={self._now}, requested={time})")
        return self._queue.push(time, callback, priority=priority, label=label)

    def call_after(self, delay: float, callback: Callable[[], None], *,
                   priority: int = PRIORITY_TIMER, label: str = "") -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.call_at(self._now + delay, callback, priority=priority, label=label)

    def spawn(self, generator: Iterable[Any], *, label: str = "") -> "Process":
        """Run a generator-based process (see :mod:`repro.sim.process`)."""
        from repro.sim.process import Process

        return Process(self, generator, label=label)

    # ------------------------------------------------------------------- run
    def stop(self) -> None:
        """Request that :meth:`run` returns after the current event."""
        self._stopped = True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run the simulation.

        Parameters
        ----------
        until:
            Stop once simulated time would exceed this value.  Events at
            exactly ``until`` are executed.
        max_events:
            Safety valve for runaway simulations.

        Returns
        -------
        float
            The simulated time when the run stopped.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        self._stopped = False
        try:
            while not self._stopped:
                if max_events is not None and self._event_count >= max_events:
                    break
                next_time = self._queue.peek_time()
                if next_time is None:
                    # Nothing left to execute: advance the clock to the
                    # requested horizon so callers see time pass even in an
                    # idle system.
                    if until is not None and until > self._now:
                        self._now = until
                    break
                if until is not None and next_time > until:
                    self._now = until
                    break
                event = self._queue.pop()
                assert event is not None
                self._now = event.time
                self._event_count += 1
                event.callback()
            return self._now
        finally:
            self._running = False

    def run_until_idle(self, max_events: int = 10_000_000) -> float:
        """Run until no events remain (or ``max_events`` is hit)."""
        return self.run(max_events=max_events)
