"""Discrete-event simulation engine.

The engine maintains a priority queue of timestamped events.  Each event
carries a callback; running the simulation pops events in time order and
invokes the callbacks, which may in turn schedule further events.  Ties in
time are broken by a monotonically increasing sequence number so that the
execution order is fully deterministic.

Simulated time is a ``float`` measured in **seconds**, matching the paper's
reporting units (update period of 5 s, background-resolution periods of
20 s / 40 s, resolution delays reported in milliseconds).

Hot-path design (see DESIGN.md "Hot path & event cost budget"):

* :class:`Event` is a ``__slots__`` class ordered by a pre-built
  ``(time, priority, seq)`` key, but the heap itself stores
  ``(time, priority, seq, event)`` tuples so ``heapq`` compares plain
  tuples in C — no Python ``__lt__`` call per sift step.
* Events that provably never escape to callers (network deliveries, timer
  ticks scheduled with ``recyclable=True``) are drawn from and returned to a
  bounded free list, so steady-state simulation allocates no event objects.
* An event may carry a single ``arg``; the run loop invokes
  ``callback(arg)`` when set and ``callback()`` otherwise.  This lets the
  network bind one ``_deliver`` method per network instead of allocating a
  capturing lambda per message.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush, heapify
from typing import Any, Callable, Iterable, Optional

from repro.transport.errors import TransportError


class SimulationError(TransportError):
    """Raised for invalid uses of the simulation engine.

    Subclasses the seam-level :class:`~repro.transport.errors.TransportError`
    so backend-agnostic code can catch scheduling misuse without importing
    the engine.
    """


#: sentinel distinguishing "no argument" from an argument of ``None``
_NO_ARG = object()


class Event:
    """A single scheduled event.

    Events are ordered by ``(time, priority, seq)``.  ``priority`` allows
    infrastructure events (e.g. message deliveries) to be ordered relative to
    application timers firing at the same instant; lower values run first.
    """

    __slots__ = ("time", "priority", "seq", "callback", "arg", "label",
                 "cancelled", "recyclable", "queue")

    def __init__(self, time: float, priority: int, seq: int,
                 callback: Callable[..., None], label: str = "",
                 cancelled: bool = False,
                 queue: Optional["EventQueue"] = None) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        #: optional single argument passed to ``callback`` (``_NO_ARG`` = none)
        self.arg: Any = _NO_ARG
        self.label = label
        self.cancelled = cancelled
        #: event may be returned to the queue's free list once executed or
        #: skipped; only set for events whose handle never escapes the caller
        self.recyclable = False
        #: owning queue while the event is pending; cleared once executed so a
        #: late ``cancel()`` on an already-run event is a no-op
        self.queue = queue

    def __lt__(self, other: "Event") -> bool:
        return ((self.time, self.priority, self.seq)
                < (other.time, other.priority, other.seq))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return (f"<Event t={self.time:g} prio={self.priority} seq={self.seq} "
                f"label={self.label!r} {state}>")

    def cancel(self) -> None:
        """Cancel the event; it will be skipped when popped."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.queue is not None:
            self.queue._note_cancelled()


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects.

    Cancellation is lazy (cancelled events stay in the heap until popped),
    but the live count is maintained eagerly so ``len(queue)`` is O(1), and
    the heap is compacted whenever cancelled entries outnumber live ones, so
    long runs with many cancelled timers do not leak memory.

    The heap stores ``(time, priority, seq, event)`` tuples; ``seq`` is
    unique, so comparisons never reach the event object and stay in C.
    """

    #: below this heap size compaction is not worth the heapify cost
    COMPACTION_MIN_SIZE = 64
    #: upper bound on the recycled-event free list
    POOL_MAX_SIZE = 4096

    def __init__(self) -> None:
        self._heap: list[tuple] = []
        self._next_seq = 0
        self._live = 0
        self._cancelled = 0
        self._pool: list[Event] = []

    def __len__(self) -> int:
        return self._live

    @property
    def cancelled_pending(self) -> int:
        """Cancelled events still occupying heap slots (for introspection)."""
        return self._cancelled

    @property
    def pool_size(self) -> int:
        """Events currently parked on the free list (for introspection)."""
        return len(self._pool)

    def push(self, time: float, callback: Callable[..., None], *,
             priority: int = 0, label: str = "", arg: Any = _NO_ARG,
             recyclable: bool = False) -> Event:
        """Schedule ``callback`` at ``time`` and return the event handle.

        ``recyclable=True`` promises the caller will not retain the handle
        after it has fired or been cancelled; such events are drawn from and
        returned to a free list, so the steady state allocates nothing.
        """
        if math.isnan(time):
            raise SimulationError("cannot schedule an event at NaN time")
        seq = self._next_seq
        self._next_seq = seq + 1
        pool = self._pool
        if recyclable and pool:
            event = pool.pop()
            event.time = time
            event.priority = priority
            event.seq = seq
            event.callback = callback
            event.label = label
            event.cancelled = False
            event.queue = self
        else:
            event = Event(time=time, priority=priority, seq=seq,
                          callback=callback, label=label, queue=self)
        event.arg = arg
        event.recyclable = recyclable
        heappush(self._heap, (time, priority, seq, event))
        self._live += 1
        return event

    def _recycle(self, event: Event) -> None:
        """Return an executed/skipped recyclable event to the free list."""
        if len(self._pool) < self.POOL_MAX_SIZE:
            event.callback = None
            event.arg = _NO_ARG
            event.queue = None
            self._pool.append(event)

    def _note_cancelled(self) -> None:
        self._live -= 1
        self._cancelled += 1
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        if (self._cancelled > self._live
                and len(self._heap) >= self.COMPACTION_MIN_SIZE):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify the survivors.

        Mutates the heap list in place: ``Simulator.run`` holds a direct
        reference to it across callbacks, and a callback may trigger
        compaction (via a cancellation) mid-run.
        """
        survivors = []
        for entry in self._heap:
            event = entry[3]
            if event.cancelled:
                if event.recyclable:
                    self._recycle(event)
            else:
                survivors.append(entry)
        self._heap[:] = survivors
        heapify(self._heap)
        self._cancelled = 0

    def pop(self) -> Optional[Event]:
        """Pop the next non-cancelled event, or ``None`` if the queue is empty."""
        heap = self._heap
        while heap:
            event = heappop(heap)[3]
            if event.cancelled:
                self._cancelled -= 1
                if event.recyclable:
                    self._recycle(event)
                continue
            self._live -= 1
            event.queue = None
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the timestamp of the next pending event without popping it.

        Draining cancelled heads updates the same bookkeeping as
        :meth:`_note_cancelled` and triggers compaction through the same
        threshold, so cancellation-heavy idle polling (peek without pop)
        cannot defer compaction indefinitely.
        """
        heap = self._heap
        drained = False
        while heap and heap[0][3].cancelled:
            event = heappop(heap)[3]
            self._cancelled -= 1
            if event.recyclable:
                self._recycle(event)
            drained = True
        if drained:
            self._maybe_compact()
        if heap:
            return heap[0][0]
        return None


class Simulator:
    """The discrete-event simulator driving every experiment in this repo.

    Typical usage::

        sim = Simulator(seed=7)
        sim.call_at(1.0, lambda: print("hello at t=1"))
        sim.run(until=10.0)

    The simulator also owns the shared :class:`~repro.sim.random.RandomStreams`
    instance so that all stochastic components (latency jitter, gossip fanout
    choices, workload generators) derive their randomness from a single seed.
    """

    #: priority used for network message delivery events
    PRIORITY_NETWORK = -1
    #: priority used for ordinary timers
    PRIORITY_TIMER = 0

    def __init__(self, seed: int = 0) -> None:
        from repro.sim.random import RandomStreams

        self._queue = EventQueue()
        self._now = 0.0
        self._running = False
        self._stopped = False
        self.seed = seed
        self.random = RandomStreams(seed)
        self._event_count = 0

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far."""
        return self._event_count

    # ------------------------------------------------------------- scheduling
    def call_at(self, time: float, callback: Callable[..., None], *,
                priority: int = PRIORITY_TIMER, label: str = "",
                arg: Any = _NO_ARG, recyclable: bool = False) -> Event:
        """Schedule ``callback`` to run at absolute simulated time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event in the past (now={self._now}, requested={time})")
        return self._queue.push(time, callback, priority=priority, label=label,
                                arg=arg, recyclable=recyclable)

    def call_after(self, delay: float, callback: Callable[..., None], *,
                   priority: int = PRIORITY_TIMER, label: str = "",
                   arg: Any = _NO_ARG, recyclable: bool = False) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self._queue.push(self._now + delay, callback, priority=priority,
                                label=label, arg=arg, recyclable=recyclable)

    def spawn(self, generator: Iterable[Any], *, label: str = "") -> "Process":
        """Run a generator-based process (see :mod:`repro.sim.process`)."""
        from repro.sim.process import Process

        return Process(self, generator, label=label)

    # ------------------------------------------------------------------- run
    def stop(self) -> None:
        """Request that :meth:`run` returns after the current event."""
        self._stopped = True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run the simulation.

        Parameters
        ----------
        until:
            Stop once simulated time would exceed this value.  Events at
            exactly ``until`` are executed.
        max_events:
            Safety valve for runaway simulations.

        Returns
        -------
        float
            The simulated time when the run stopped.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        self._stopped = False
        # Inner-loop locals: one attribute lookup each instead of one per event.
        queue = self._queue
        heap = queue._heap
        pop_head = heappop
        no_arg = _NO_ARG
        recycle = queue._recycle
        try:
            while not self._stopped:
                if max_events is not None and self._event_count >= max_events:
                    break
                # Inline peek: skip cancelled heads with pop's bookkeeping.
                while heap and heap[0][3].cancelled:
                    skipped = pop_head(heap)[3]
                    queue._cancelled -= 1
                    if skipped.recyclable:
                        recycle(skipped)
                if not heap:
                    # Nothing left to execute: advance the clock to the
                    # requested horizon so callers see time pass even in an
                    # idle system.
                    if until is not None and until > self._now:
                        self._now = until
                    break
                next_time = heap[0][0]
                if until is not None and next_time > until:
                    self._now = until
                    break
                event = pop_head(heap)[3]
                queue._live -= 1
                event.queue = None
                self._now = next_time
                self._event_count += 1
                arg = event.arg
                if arg is no_arg:
                    event.callback()
                else:
                    event.callback(arg)
                if event.recyclable:
                    recycle(event)
            return self._now
        finally:
            self._running = False

    def run_until_idle(self, max_events: int = 10_000_000) -> float:
        """Run until no events remain (or ``max_events`` is hit)."""
        return self.run(max_events=max_events)

    def run_window(self, until: float) -> int:
        """Advance one lockstep window and report the events it executed.

        Entry point for the space-partitioned backend (``repro.shard``):
        the coordinator calls this once per barrier, so a shard executes
        everything up to and including ``until`` and parks there.  The
        return value feeds per-window telemetry and the cross-shard event
        conservation check.
        """
        before = self._event_count
        self.run(until=until)
        return self._event_count - before
