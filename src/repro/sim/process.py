"""Compatibility shim: generator processes moved to :mod:`repro.transport.tasks`.

The process/waiter machinery only ever needed ``clock.call_after``, so it
now lives at the transport seam where both the simulator and the live
backend share it.  This module keeps the historical import path working.
"""

from __future__ import annotations

from repro.transport.tasks import Process, Waiter, _Sleep, sleep

__all__ = ["Process", "Waiter", "sleep", "_Sleep"]
