"""Synthetic wide-area topology standing in for the Planet-Lab slice.

The paper's experiments run on 40 Planet-Lab nodes "spanning US and Canada",
with four of them chosen to be far apart (they form the top layer).  We do
not have the authors' node list or RTT measurements, so the substitute is a
synthetic continental topology:

* nodes are placed in a handful of metropolitan *sites* (US east/central/
  mountain/west coast plus two Canadian sites),
* intra-site one-way delay is a few milliseconds,
* inter-site one-way delay is derived from great-circle-like distances
  between site coordinates at a representative WAN propagation speed plus a
  fixed per-hop processing overhead,

which yields one-way delays in the 2–50 ms range and RTTs of 5–100 ms —
consistent with published Planet-Lab latency studies of the era and with the
~105 ms per-member sequential resolution cost the paper measures (Table 2:
one request/response exchange plus processing per visited member).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Site:
    """A metropolitan site hosting one or more simulated nodes."""

    name: str
    #: planar coordinates in kilometres (synthetic, roughly continental scale)
    x: float
    y: float


#: Default continental sites.  Coordinates approximate relative positions of
#: the metro areas on a planar projection (km); exact values are synthetic.
DEFAULT_SITES: Tuple[Site, ...] = (
    Site("boston", 4400.0, 800.0),
    Site("princeton", 4200.0, 600.0),
    Site("chicago", 3000.0, 700.0),
    Site("houston", 2600.0, -600.0),
    Site("denver", 1800.0, 300.0),
    Site("seattle", 300.0, 1500.0),
    Site("berkeley", 100.0, 600.0),
    Site("san_diego", 400.0, 0.0),
    Site("toronto", 3700.0, 1100.0),
    Site("vancouver", 250.0, 1700.0),
)

#: Effective signal propagation speed in fibre, km per second (≈ 2/3 c).
PROPAGATION_KM_PER_S = 200_000.0
#: Fixed per-message processing / queueing overhead in seconds.
PER_HOP_OVERHEAD_S = 0.010
#: One-way delay between two nodes at the same site.
INTRA_SITE_DELAY_S = 0.002


@dataclass
class Topology:
    """Assignment of node identifiers to sites plus the base delay matrix.

    The pairwise delay table is *cached lazily*: pairs are computed on first
    use and memoised, and because delays only depend on the two endpoints'
    sites, each computed value is shared between every node pair at the same
    site pair.  Building a 1000-node topology therefore costs O(sites²)
    distance computations rather than O(nodes²) at construction time.
    """

    node_ids: List[str]
    sites: Dict[str, Site]
    node_site: Dict[str, str]
    # Lazily filled caches: query history must not affect equality.
    base_delay: Dict[Tuple[str, str], float] = field(default_factory=dict,
                                                     compare=False)
    _site_delay: Dict[Tuple[str, str], float] = field(default_factory=dict,
                                                      repr=False, compare=False)

    def _site_pair_delay(self, site_a: str, site_b: str) -> float:
        key = (site_a, site_b)
        cached = self._site_delay.get(key)
        if cached is None:
            if site_a == site_b:
                cached = INTRA_SITE_DELAY_S
            else:
                sa, sb = self.sites[site_a], self.sites[site_b]
                dist = float(np.hypot(sa.x - sb.x, sa.y - sb.y))
                cached = PER_HOP_OVERHEAD_S + dist / PROPAGATION_KM_PER_S
            self._site_delay[key] = cached
        return cached

    # ------------------------------------------------------------------ api
    def one_way_delay(self, src: str, dst: str) -> float:
        """Deterministic base one-way delay (seconds) between two nodes."""
        cached = self.base_delay.get((src, dst))
        if cached is not None:
            return cached
        try:
            site_src, site_dst = self.node_site[src], self.node_site[dst]
        except KeyError as exc:
            raise KeyError(f"unknown node pair ({src!r}, {dst!r})") from exc
        delay = 0.0 if src == dst else self._site_pair_delay(site_src, site_dst)
        self.base_delay[(src, dst)] = delay
        return delay

    def rtt(self, src: str, dst: str) -> float:
        """Base round-trip time (seconds)."""
        return self.one_way_delay(src, dst) + self.one_way_delay(dst, src)

    def latency_floor(self, site_a: str | None = None,
                      site_b: str | None = None) -> float:
        """Deterministic lower bound on the base one-way delay (seconds).

        With both site names given, returns the base delay between those two
        sites — the deterministic part of any latency model built on this
        topology, and hence a floor for the sampled delay between any node
        at ``site_a`` and any node at ``site_b`` (models may jitter *above*
        the base but derive their own floors from this value).

        With no arguments, returns the minimum base delay over every pair of
        *occupied* sites — including the intra-site delay whenever some site
        hosts two or more nodes.  This is the quantity a conservative
        space-partitioned simulation uses as its global lookahead bound.
        A single-node topology has no pairs and returns ``0.0``.
        """
        if (site_a is None) != (site_b is None):
            raise ValueError("latency_floor takes either two sites or none")
        if site_a is not None and site_b is not None:
            for name in (site_a, site_b):
                if name not in self.sites:
                    raise KeyError(f"unknown site {name!r}")
            return self._site_pair_delay(site_a, site_b)
        counts: Dict[str, int] = {}
        for site in self.node_site.values():
            counts[site] = counts.get(site, 0) + 1
        occupied = sorted(counts)
        floors = [self._site_pair_delay(a, b)
                  for i, a in enumerate(occupied) for b in occupied[i + 1:]]
        if any(count >= 2 for count in counts.values()):
            floors.append(INTRA_SITE_DELAY_S)
        return min(floors) if floors else 0.0

    def nodes_at_site(self, site_name: str) -> List[str]:
        return [n for n in self.node_ids if self.node_site[n] == site_name]

    def mean_rtt(self) -> float:
        """Average RTT over all distinct node pairs (seconds)."""
        pairs = [(a, b) for a in self.node_ids for b in self.node_ids if a != b]
        if not pairs:
            return 0.0
        return float(np.mean([self.rtt(a, b) for a, b in pairs]))


def planetlab_topology(num_nodes: int = 40, *, sites: Sequence[Site] = DEFAULT_SITES,
                       rng: np.random.Generator | None = None,
                       spread_writers: int = 4) -> Topology:
    """Build the Planet-Lab-substitute topology used throughout the benchmarks.

    Parameters
    ----------
    num_nodes:
        Number of simulated hosts (the paper uses 40).
    sites:
        Candidate metropolitan sites.
    rng:
        Optional generator used to assign the remaining nodes to sites; if
        omitted, assignment is round-robin (fully deterministic).
    spread_writers:
        The first ``spread_writers`` node ids (``n00`` .. ) are pinned to
        maximally spread sites, mimicking the paper's choice of four writers
        "carefully chosen so that they are far apart from each other".
    """
    if num_nodes < 1:
        raise ValueError("num_nodes must be >= 1")
    if not sites:
        raise ValueError("at least one site is required")

    node_ids = [f"n{i:02d}" for i in range(num_nodes)]
    site_map = {s.name: s for s in sites}
    node_site: Dict[str, str] = {}

    # Pin the designated writers to sites that are far apart: pick sites by
    # greedy max-min distance starting from the first site.
    spread = _spread_site_order(list(sites))
    for i in range(min(spread_writers, num_nodes)):
        node_site[node_ids[i]] = spread[i % len(spread)].name

    remaining = node_ids[min(spread_writers, num_nodes):]
    if rng is None:
        for i, node in enumerate(remaining):
            node_site[node] = sites[i % len(sites)].name
    else:
        for node in remaining:
            node_site[node] = sites[int(rng.integers(0, len(sites)))].name

    return Topology(node_ids=node_ids, sites=site_map, node_site=node_site)


def _spread_site_order(sites: List[Site]) -> List[Site]:
    """Order sites by greedy max-min pairwise distance (first site is fixed)."""
    if not sites:
        return []
    chosen = [sites[0]]
    rest = sites[1:]
    while rest:
        def min_dist(s: Site) -> float:
            return min(np.hypot(s.x - c.x, s.y - c.y) for c in chosen)

        best = max(rest, key=min_dist)
        chosen.append(best)
        rest.remove(best)
    return chosen
