"""Metric tracing: counters and time series used by the experiment harness.

The paper evaluates IDEA with three metrics (Section 6): *delay*,
*consistency level* (sampled every 5 s in Figures 7/8/10), and *incurred
overhead* in number of protocol messages (Table 3).  The classes here collect
exactly those: :class:`TimeSeries` for sampled values over simulated time,
:class:`Counter` for monotonically increasing counts, and
:class:`TraceRecorder` as the per-experiment container with summary helpers.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np


@dataclass
class Counter:
    """A labelled monotonically increasing counter."""

    name: str
    value: int = 0

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount


class TimeSeries:
    """A sequence of (time, value) samples in non-decreasing time order."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._times: List[float] = []
        self._values: List[float] = []

    def __len__(self) -> int:
        return len(self._times)

    def record(self, time: float, value: float) -> None:
        if self._times and time < self._times[-1]:
            raise ValueError(
                f"samples must be recorded in time order ({time} < {self._times[-1]})")
        self._times.append(float(time))
        self._values.append(float(value))

    @property
    def times(self) -> List[float]:
        return list(self._times)

    @property
    def values(self) -> List[float]:
        return list(self._values)

    def value_at(self, time: float, default: Optional[float] = None) -> Optional[float]:
        """Most recent value at or before ``time`` (step interpolation)."""
        idx = bisect_right(self._times, time) - 1
        if idx < 0:
            return default
        return self._values[idx]

    def min(self) -> float:
        if not self._values:
            raise ValueError(f"time series {self.name!r} is empty")
        return min(self._values)

    def max(self) -> float:
        if not self._values:
            raise ValueError(f"time series {self.name!r} is empty")
        return max(self._values)

    def mean(self) -> float:
        if not self._values:
            raise ValueError(f"time series {self.name!r} is empty")
        return float(np.mean(self._values))

    def window(self, start: float, end: float) -> "TimeSeries":
        """Return the sub-series with start <= time <= end."""
        out = TimeSeries(self.name)
        for t, v in zip(self._times, self._values):
            if start <= t <= end:
                out.record(t, v)
        return out

    def as_rows(self) -> List[Tuple[float, float]]:
        return list(zip(self._times, self._values))


class TraceRecorder:
    """Container for all counters and time series of one experiment run."""

    def __init__(self) -> None:
        self._series: Dict[str, TimeSeries] = {}
        self._counters: Dict[str, Counter] = {}
        self._events: List[Tuple[float, str, dict]] = []

    # --------------------------------------------------------------- series
    def series(self, name: str) -> TimeSeries:
        if name not in self._series:
            self._series[name] = TimeSeries(name)
        return self._series[name]

    def has_series(self, name: str) -> bool:
        return name in self._series

    def series_names(self) -> List[str]:
        return sorted(self._series)

    def record(self, name: str, time: float, value: float) -> None:
        self.series(name).record(time, value)

    # ------------------------------------------------------------- counters
    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def increment(self, name: str, amount: int = 1) -> None:
        self.counter(name).increment(amount)

    def count(self, name: str) -> int:
        return self._counters[name].value if name in self._counters else 0

    # --------------------------------------------------------------- events
    def log_event(self, time: float, kind: str, **details) -> None:
        """Record a discrete annotated event (e.g. 'resolution_started')."""
        self._events.append((time, kind, details))

    def events(self, kind: Optional[str] = None) -> List[Tuple[float, str, dict]]:
        if kind is None:
            return list(self._events)
        return [e for e in self._events if e[1] == kind]

    # -------------------------------------------------------------- summary
    def summary(self) -> Dict[str, dict]:
        """Aggregate statistics for every series and counter (for reports)."""
        out: Dict[str, dict] = {}
        for name, series in self._series.items():
            if len(series) == 0:
                out[name] = {"samples": 0}
                continue
            values = np.asarray(series.values)
            out[name] = {
                "samples": int(len(series)),
                "min": float(values.min()),
                "max": float(values.max()),
                "mean": float(values.mean()),
                "last": float(values[-1]),
            }
        for name, counter in self._counters.items():
            out[name] = {"count": counter.value}
        return out


def sample_mean(values: Sequence[float]) -> float:
    """Mean of a sequence, raising on empty input (explicit beats NaN)."""
    if not values:
        raise ValueError("cannot take the mean of an empty sequence")
    return float(np.mean(np.asarray(values, dtype=float)))


def percentile(values: Iterable[float], q: float) -> float:
    """The q-th percentile (0..100) of the values."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot take a percentile of an empty sequence")
    return float(np.percentile(arr, q))
