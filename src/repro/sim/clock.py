"""Per-node clocks with bounded skew.

The paper assumes that "the gap among time clocks of participating nodes in
the system is within seconds" (Section 4.4.1), achieved in practice by NTP or
a global clock-synchronisation algorithm.  Extended version vectors attach a
timestamp to every update and the *staleness* component of the consistency
triple is computed from those timestamps, so clock error feeds directly into
the consistency-level calculation.

:class:`DriftingClock` models a node clock as ``local = true + offset +
drift_rate * (true - sync_time)``, re-synchronised periodically (the NTP
substitute).  With the default parameters the skew stays well under one
second, matching the paper's assumption; tests also exercise larger skews to
check that staleness degrades gracefully.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class ClockModel:
    """Parameters shared by all node clocks in a deployment.

    Attributes
    ----------
    max_offset:
        Maximum absolute offset (seconds) right after a synchronisation.
    max_drift_rate:
        Maximum absolute drift rate (seconds of error per second of real
        time) accumulated between synchronisations.
    sync_interval:
        Period of the NTP-substitute re-synchronisation.  ``None`` disables
        re-synchronisation (offset and drift persist forever).
    """

    max_offset: float = 0.05
    max_drift_rate: float = 1e-5
    sync_interval: Optional[float] = 60.0

    def perfect(self) -> "ClockModel":
        """Return a model with zero error (useful for unit tests)."""
        return ClockModel(max_offset=0.0, max_drift_rate=0.0, sync_interval=None)


class DriftingClock:
    """A node-local clock reading derived from simulated (true) time."""

    def __init__(self, node_id: str, model: ClockModel, rng: np.random.Generator) -> None:
        self.node_id = node_id
        self.model = model
        self._rng = rng
        self._offset = 0.0
        self._drift_rate = 0.0
        self._last_sync = 0.0
        self._resample()

    def _resample(self) -> None:
        if self.model.max_offset > 0:
            self._offset = float(self._rng.uniform(-self.model.max_offset,
                                                   self.model.max_offset))
        else:
            self._offset = 0.0
        if self.model.max_drift_rate > 0:
            self._drift_rate = float(self._rng.uniform(-self.model.max_drift_rate,
                                                       self.model.max_drift_rate))
        else:
            self._drift_rate = 0.0

    def read(self, true_time: float) -> float:
        """Return this node's clock reading at simulated (true) time ``true_time``."""
        if true_time < 0:
            raise ValueError("true_time must be non-negative")
        self._maybe_sync(true_time)
        return true_time + self._offset + self._drift_rate * (true_time - self._last_sync)

    def error(self, true_time: float) -> float:
        """Absolute clock error at ``true_time`` (seconds)."""
        return abs(self.read(true_time) - true_time)

    def _maybe_sync(self, true_time: float) -> None:
        interval = self.model.sync_interval
        if interval is None or interval <= 0:
            return
        # Apply every synchronisation point passed since the last read.
        while true_time - self._last_sync >= interval:
            self._last_sync += interval
            self._resample()
