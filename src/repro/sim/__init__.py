"""Discrete-event simulation substrate.

The paper evaluates IDEA on a 40-node Planet-Lab slice spanning the US and
Canada.  This subpackage is the substitute substrate: a deterministic
discrete-event simulator with

* an event engine supporting callbacks and generator-style processes
  (:mod:`repro.sim.engine`, :mod:`repro.sim.process`),
* a wide-area latency model whose round-trip times mimic a continental
  Planet-Lab slice (:mod:`repro.sim.latency`, :mod:`repro.sim.topology`),
* a message-passing network that counts every protocol message
  (:mod:`repro.sim.network`),
* per-node clocks with bounded skew, standing in for NTP-synchronised
  hosts (:mod:`repro.sim.clock`),
* deterministic named random streams (:mod:`repro.sim.random`), and
* time-series / counter tracing used by the experiment harness
  (:mod:`repro.sim.trace`).

All protocol logic in :mod:`repro.core`, :mod:`repro.overlay` and
:mod:`repro.baselines` is written against the :mod:`repro.transport` seam;
this subpackage is the discrete-event implementation of it (``Simulator`` is
the ``Clock``, ``Network``/``SimTransport`` the ``Transport``), and
:mod:`repro.live` re-targets the same protocol code at real sockets.
"""

from repro.sim.engine import Event, EventQueue, Simulator
from repro.sim.process import Process, sleep
from repro.sim.random import RandomStreams
from repro.sim.clock import DriftingClock, ClockModel
from repro.sim.latency import LatencyModel, PlanetLabLatencyModel, UniformLatencyModel
from repro.sim.topology import Site, Topology, planetlab_topology
from repro.sim.network import Message, Network, NetworkStats, SimTransport
from repro.sim.node import Node, RPCError
from repro.sim.trace import Counter, TimeSeries, TraceRecorder

__all__ = [
    "Event",
    "EventQueue",
    "Simulator",
    "Process",
    "sleep",
    "RandomStreams",
    "DriftingClock",
    "ClockModel",
    "LatencyModel",
    "PlanetLabLatencyModel",
    "UniformLatencyModel",
    "Site",
    "Topology",
    "planetlab_topology",
    "Message",
    "Network",
    "NetworkStats",
    "SimTransport",
    "Node",
    "RPCError",
    "Counter",
    "TimeSeries",
    "TraceRecorder",
]
