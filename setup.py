"""Setuptools entry point.

The build metadata lives here (rather than in a ``[project]`` table) so that
``pip install -e .`` works in fully offline environments where the ``wheel``
package is unavailable and PEP 660 editable builds cannot be prepared.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of IDEA: detection-based adaptive consistency control "
        "for replicated services (Lu, Lu & Jiang, 2007)"
    ),
    long_description=open("README.md", encoding="utf-8").read() if __import__("os").path.exists("README.md") else "",
    long_description_content_type="text/markdown",
    license="MIT",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro.worlds": ["catalog/*.json"]},
    install_requires=["numpy>=1.24"],
    extras_require={
        "dev": ["pytest>=7.0", "pytest-benchmark>=4.0", "hypothesis>=6.0"],
    },
)
