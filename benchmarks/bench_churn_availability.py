"""Churn availability benchmark: fault injection end to end, persisted.

Runs the ``fig_churn_availability`` scenario (kill and later recover 25 % of
the nodes mid-run, under packet loss) at a CI-sized sweep, asserts the
failure model's acceptance claims, and persists the metrics to
``BENCH_churn.json``:

* the run **completes without exceptions** — sends to crashed/partitioned
  nodes are counted drops, pending RPCs fail promptly, resolution rounds
  time crashed members out instead of hanging;
* the run **replays bit-identically** under the same seed, fault events and
  loss drops included;
* **recovery is real** — every killed node is back online at the end, writes
  resume after recovery, and background rounds keep completing under churn.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.fig_churn_availability import (
    fingerprint,
    format_churn_report,
    run_churn_experiment,
    run_churn_point,
)
from repro.farm import default_jobs

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_churn.json"

#: CI-sized sweep: small but covering both axes (size and loss)
NODE_COUNTS = (8, 16, 32)
LOSS_PROBABILITIES = (0.0, 0.01, 0.05)
DURATION = 90.0


def bench_churn_availability(benchmark):
    result = benchmark.pedantic(
        lambda: run_churn_experiment(node_counts=NODE_COUNTS,
                                     loss_probabilities=LOSS_PROBABILITIES,
                                     duration=DURATION, seed=29,
                                     jobs=default_jobs()),
        rounds=1, iterations=1)
    print()
    print(format_churn_report(result))

    for point in result.points:
        # Every crash got its recovery and the whole membership is back.
        assert point.crashes == point.recoveries > 0
        assert point.final_alive == point.num_nodes
        # The workload survived the churn window.
        assert point.writes_applied > 0
        assert point.detection_failures > 0
        # Crashed endpoints show up as counted drops, never as exceptions.
        assert point.dropped_by_reason.get("dst-down", 0) > 0
        # Background resolution kept completing despite the churn.
        assert point.background_completed > 0
        assert point.resolutions_succeeded > 0

    # Replay determinism for the acceptance point: same seed, same trace —
    # serial and in-process even when the sweep above ran farmed.
    first = result.points[0]
    replay = run_churn_point(num_nodes=first.num_nodes,
                             loss_probability=first.loss_probability,
                             duration=DURATION, seed=first.seed)
    assert fingerprint(replay) == fingerprint(first), \
        "churn scenario did not replay bit-identically under the same seed"

    OUTPUT_PATH.write_text(json.dumps({
        "experiment": "fig_churn_availability",
        "scenario": {
            "node_counts": list(NODE_COUNTS),
            "loss_probabilities": list(LOSS_PROBABILITIES),
            "kill_fraction": 0.25,
            "duration_simulated_s": DURATION,
        },
        "points": [p.as_dict() for p in result.points],
        "determinism": {
            "replayed_point": {"num_nodes": first.num_nodes,
                               "loss_probability": first.loss_probability},
            "fingerprint": fingerprint(first),
            "replay_identical": True,
        },
    }, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    print(f"\nwrote {OUTPUT_PATH}")
