"""World-catalog benchmark: every committed world, serial vs farmed.

Runs the whole ``repro/worlds/catalog`` through the world matrix twice —
once through the serial in-process oracle (``jobs=1``) and once through a
multiprocess farm — and asserts three things:

* every world's fingerprint matches its **committed pin** (the
  ``fingerprint`` block inside the catalog JSON),
* the farmed run reproduces the serial run point for point, and
* the whole catalog stays cheap enough to gate in CI.

Per-world fingerprints and wall-clocks are persisted to
``BENCH_worlds.json`` for the ``worlds`` regression gate.  After an
intentional behaviour change, re-pin the catalog
(``python -m repro.worlds --fingerprint <world> --write`` per world) and
re-run this benchmark to refresh the committed trace.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.experiments.fig_world_matrix import build_world_matrix_grid
from repro.farm import SweepFarm
from repro.worlds import catalog_names, load_world

PARALLEL_JOBS = 4

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_worlds.json"


def bench_worlds(benchmark):
    names = catalog_names()
    specs = build_world_matrix_grid(worlds=names)
    cpu_count = os.cpu_count() or 1

    serial_started = time.perf_counter()
    serial = SweepFarm(specs, jobs=1).run()
    serial_wall = time.perf_counter() - serial_started

    parallel = benchmark.pedantic(
        lambda: SweepFarm(specs, jobs=PARALLEL_JOBS).run(),
        rounds=1, iterations=1)

    assert serial.ok and parallel.ok
    serial_points = list(serial.values())
    parallel_points = list(parallel.values())
    assert [p.fingerprint for p in parallel_points] == \
        [p.fingerprint for p in serial_points], \
        "farmed catalog run diverged from the serial oracle"

    pin_match = True
    for name, point in zip(names, serial_points):
        pinned = load_world(name).fingerprint
        assert pinned is not None, f"catalog world {name} carries no pin"
        if point.fingerprint != dict(pinned.values):
            pin_match = False
            print(f"PIN MISMATCH: {name}")
    assert pin_match, "catalog worlds diverged from their committed pins"

    speedup = serial_wall / parallel.wall_seconds if parallel.wall_seconds else 0.0
    print(f"\n{len(names)} worlds: serial {serial_wall:.2f}s, "
          f"parallel (jobs={PARALLEL_JOBS}) {parallel.wall_seconds:.2f}s, "
          f"speedup {speedup:.2f}x on {cpu_count} core(s)")

    OUTPUT_PATH.write_text(json.dumps({
        "experiment": "world_catalog",
        "cpu_count": cpu_count,
        "jobs": PARALLEL_JOBS,
        "serial_wall_seconds": serial_wall,
        "parallel_wall_seconds": parallel.wall_seconds,
        "speedup": speedup,
        "pin_match": pin_match,
        "worlds": {
            point.world: {
                "seed": point.seed,
                "horizon_s": point.horizon,
                "num_nodes": point.num_nodes,
                "fingerprint": dict(point.fingerprint),
                "wall_seconds": round(point.wall_seconds, 6),
            }
            for point in serial_points
        },
    }, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    print(f"wrote {OUTPUT_PATH.name}")
