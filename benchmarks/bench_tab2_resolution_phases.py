"""Table 2: delay breakdown of one round of active resolution.

Paper reference (Planet-Lab, top layer of four, averaged over four runs):
phase 1 = 0.46825 ms, phase 2 = 314.241 ms (≈ 104.7 ms per visited member).
The reproduction's absolute phase-2 value depends on the synthetic WAN
latency model, but the structure must hold: phase 1 stays sub-millisecond
(parallel dispatch only) and phase 2 is two to three orders of magnitude
larger and linear in the member count.
"""

from __future__ import annotations

from repro.experiments.tab2_phases import format_report, run_phase_breakdown


def bench_tab2_phase_breakdown(benchmark):
    result = benchmark.pedantic(
        lambda: run_phase_breakdown(num_nodes=40, num_writers=4, seed=17),
        rounds=1, iterations=1)
    print()
    print(format_report(result))
    assert result.runs == 4
    assert result.top_layer_size == 4
    # Phase 1: parallel call-for-attention, sub-millisecond.
    assert result.mean_phase1 < 0.002
    # Phase 2: sequential wide-area visits, hundreds of milliseconds.
    assert 0.05 < result.mean_phase2 < 1.0
    assert result.mean_phase2 > 100 * result.mean_phase1
    # Per-member cost in the wide-area RTT-plus-processing range.
    assert 0.02 < result.per_member_cost < 0.3
