"""Hot-path overhaul benchmark: per-event cost before/after, at scale.

The simulation core was rewritten for throughput (slotted pooled events,
tuple-keyed heap, allocation-free message delivery, incremental log and
digest indices — see DESIGN.md "Hot path & event cost budget").  This
benchmark proves the three acceptance claims and persists them to
``BENCH_hotpath.json``:

* **≥2× end-to-end** on the 8-node × 8-object × 300 s multi-object ablation
  versus the PR 1 wall-clock committed in ``BENCH_multiobject.json``;
* **determinism preserved** — the optimised run processes exactly the same
  number of simulator events and applies exactly the same writes as the
  committed baseline;
* **512-node Figure 9 point** — the paper's scalability experiment hosted on
  a 512-node deployment completes inside a CI smoke run.

An engine microbenchmark (a pure timer-reschedule loop) is included so the
per-event floor of the engine itself is tracked separately from protocol
work.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.experiments.fig9_scalability import (
    format_large_deployment_report,
    run_large_deployment_point,
    run_multiobject_experiment,
)
from repro.sim.engine import Simulator

#: acceptance floor for the end-to-end ablation speedup vs the committed PR 1
#: baseline (measured ~2.5-3× on the reference machine)
MIN_SPEEDUP = 2.0

ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = ROOT / "BENCH_multiobject.json"
OUTPUT_PATH = ROOT / "BENCH_hotpath.json"

#: the PR 1 ablation as committed in BENCH_multiobject.json at the time of
#: the hot-path overhaul, pinned here because running the ablation benchmark
#: regenerates that file in place (so reading it after a full-suite run
#: would compare the hot path against itself)
PR1_BASELINE = {
    "wall_clock_seconds": 7.517158719000008,
    "events_processed": 95854,
    "writes_applied": 23968,
}


def _engine_microbench(num_timers: int = 64, events: int = 200_000) -> dict:
    """Per-event floor of the bare engine: rescheduling timers, no protocol."""
    sim = Simulator(seed=1)

    def make_tick(period: float):
        def tick() -> None:
            sim.call_after(period, tick, recyclable=True)
        return tick

    for i in range(num_timers):
        sim.call_after(0.001 * (i + 1), make_tick(0.5 + 0.001 * i))
    started = time.perf_counter()
    sim.run(max_events=events)
    wall = time.perf_counter() - started
    return {
        "events": sim.events_processed,
        "wall_clock_seconds": wall,
        "per_event_us": wall / sim.events_processed * 1e6,
        "events_per_sec": sim.events_processed / wall,
    }


def _point_stats(wall: float, events: int, writes: int) -> dict:
    return {
        "wall_clock_seconds": wall,
        "events_processed": events,
        "writes_applied": writes,
        "per_event_us": wall / events * 1e6,
        "events_per_sec": events / wall,
    }


def bench_hotpath(benchmark):
    baseline_doc = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    committed = baseline_doc["ablation"]["runtime_architecture"]
    before = _point_stats(PR1_BASELINE["wall_clock_seconds"],
                          PR1_BASELINE["events_processed"],
                          PR1_BASELINE["writes_applied"])
    # The regenerable JSON must agree with the pinned baseline on the
    # deterministic quantities (machine-independent), whatever machine last
    # rewrote it.
    assert committed["events_processed"][0] == before["events_processed"]
    assert committed["writes_applied"][0] == before["writes_applied"]

    # The exact workload of the committed PR 1 ablation: 8 nodes hosting 8
    # concurrently written objects for 300 simulated seconds.
    result = benchmark.pedantic(
        lambda: run_multiobject_experiment(
            num_nodes=committed["num_nodes"], object_counts=(8,),
            duration=committed["duration_simulated_s"], write_period=0.4,
            seed=11, shared_cache=True),
        rounds=1, iterations=1)
    after = _point_stats(result.wall_clock_seconds[0],
                         result.events_processed[0],
                         result.writes_applied[0])
    speedup = before["wall_clock_seconds"] / after["wall_clock_seconds"]

    micro = _engine_microbench()
    fig9_512 = run_large_deployment_point()

    print()
    print(f"ablation 8 nodes × 8 objects × 300 s: "
          f"{before['wall_clock_seconds']:.2f} s → "
          f"{after['wall_clock_seconds']:.2f} s  ({speedup:.2f}×, "
          f"{before['per_event_us']:.1f} µs/event → "
          f"{after['per_event_us']:.1f} µs/event)")
    print(f"engine floor: {micro['per_event_us']:.2f} µs/event "
          f"({micro['events_per_sec']:,.0f} events/s)")
    print()
    print(format_large_deployment_report(fig9_512))

    OUTPUT_PATH.write_text(json.dumps({
        "ablation_8x8x300": {
            "workload": {
                "num_nodes": committed["num_nodes"],
                "num_objects": 8,
                "writers_per_object": committed["writers_per_object"],
                "write_period_s": 0.4,
                "duration_simulated_s": committed["duration_simulated_s"],
            },
            "before_pr1": before,
            "after_hotpath": after,
            "speedup": speedup,
            "determinism": {
                "events_match": after["events_processed"] == before["events_processed"],
                "writes_match": after["writes_applied"] == before["writes_applied"],
            },
        },
        "engine_microbench": micro,
        "fig9_512_nodes": {
            "num_nodes": fig9_512.num_nodes,
            "top_layer_size": fig9_512.top_layer_size,
            "active_resolution_delay_s": fig9_512.active_delay,
            "background_resolution_delay_s": fig9_512.background_delay,
            "sweep_duration_simulated_s": fig9_512.sweep_duration,
            "sweep_wall_clock_seconds": fig9_512.sweep_wall_clock,
            "sweep_events_processed": fig9_512.sweep_events,
            "sweep_writes_applied": fig9_512.sweep_writes,
            "events_per_sec": fig9_512.events_per_second,
        },
    }, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {OUTPUT_PATH.name}; end-to-end speedup {speedup:.2f}×")

    # Determinism: the fast path must replay the identical simulation.
    assert after["events_processed"] == before["events_processed"]
    assert after["writes_applied"] == before["writes_applied"]

    # The 512-node Figure 9 point completes and stays sub-second, like the
    # paper's extrapolation for small top layers.
    assert fig9_512.num_nodes == 512
    assert fig9_512.active_delay < 1.0

    # End-to-end acceptance: at least MIN_SPEEDUP× over the committed PR 1
    # baseline.  The committed wall-clock was measured on the reference
    # machine, so CI (a different machine family) sets
    # BENCH_HOTPATH_SKIP_SPEEDUP_ASSERT=1 and relies on the determinism
    # asserts above plus check_bench_regression.py's relative gate instead.
    if not os.environ.get("BENCH_HOTPATH_SKIP_SPEEDUP_ASSERT"):
        assert speedup >= MIN_SPEEDUP, (
            f"hot path regressed: {speedup:.2f}× < {MIN_SPEEDUP}× vs committed baseline")
