"""Ablation: effect of the three resolution policies on application progress.

Section 4.5.1 argues that the invalidate-both policy sacrifices progress for
fairness (both conflicting strokes disappear) while the user-ID and priority
policies keep the system moving.  This ablation runs the same conflicting
white-board workload under each policy and reports how many strokes survive
on the reconciled board.
"""

from __future__ import annotations

from typing import Dict

from repro.core.config import AdaptationMode, IdeaConfig, ResolutionStrategy
from repro.core.deployment import IdeaDeployment
from repro.core.policies import make_policy
from repro.experiments.report import format_table


def _run_policy(strategy: ResolutionStrategy, *, seed: int = 43) -> Dict[str, float]:
    deployment = IdeaDeployment(num_nodes=10, seed=seed)
    config = IdeaConfig(mode=AdaptationMode.ON_DEMAND, hint_level=0.0,
                        background_period=None, resolution_strategy=strategy)
    policy = make_policy(strategy, priorities={"n00": 10, "n01": 5})
    deployment.register_object("obj", config, policy=policy, start_background=False)
    writers = deployment.node_ids[:4]

    posted = 0
    for k in range(5):
        for writer in writers:
            if deployment.middleware("obj", writer).write(f"{writer} stroke {k}",
                                                          metadata_delta=1.0):
                posted += 1
        deployment.run(until=deployment.sim.now + 3.0)
        deployment.middleware("obj", writers[0]).resolution.start_background_resolution()
        deployment.run(until=deployment.sim.now + 5.0)

    surviving = len(deployment.stores[writers[0]].read("obj"))
    return {"posted": posted, "surviving": surviving,
            "progress": surviving / max(posted, 1)}


def bench_abl_resolution_policies(benchmark):
    strategies = (ResolutionStrategy.INVALIDATE_BOTH, ResolutionStrategy.USER_ID_BASED,
                  ResolutionStrategy.PRIORITY_BASED)

    def run_all():
        return {s: _run_policy(s) for s in strategies}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    print(format_table(
        ["policy", "strokes posted", "strokes surviving", "progress"],
        [[s.name, results[s]["posted"], results[s]["surviving"],
          f"{results[s]['progress']:.0%}"] for s in strategies],
        title="Ablation — resolution policy vs application progress"))

    invalidate = results[ResolutionStrategy.INVALIDATE_BOTH]
    user_id = results[ResolutionStrategy.USER_ID_BASED]
    priority = results[ResolutionStrategy.PRIORITY_BASED]
    # Invalidate-both destroys conflicting progress; the other two keep it.
    assert invalidate["surviving"] < user_id["surviving"]
    assert user_id["progress"] == 1.0
    assert priority["progress"] == 1.0
