"""Figure 8: hint lowered from 95 % to 90 % at t = 100 s during a 200 s run.

Paper reference: the lowest consistency level achieved by any writer is
≈ 95 % in the first 100 seconds and ≈ 90 % in the second 100 seconds —
the maintained level tracks the runtime hint change.
"""

from __future__ import annotations

from repro.experiments.fig8_hint_change import format_report, run_hint_change_experiment


def bench_fig8_hint_change(benchmark):
    result = benchmark.pedantic(
        lambda: run_hint_change_experiment(initial_hint=0.95, later_hint=0.90,
                                           switch_time=100.0, num_nodes=40,
                                           duration=200.0, seed=13),
        rounds=1, iterations=1)
    print()
    print(format_report(result))
    # The maintained (lowest) level follows the hint downwards after the switch.
    assert result.lowest_first_half > result.lowest_second_half
    # Both halves stay in the neighbourhood of their hint.
    assert result.lowest_first_half > result.initial_hint - 0.08
    assert result.lowest_second_half > result.later_hint - 0.08
    assert result.active_resolutions > 0
