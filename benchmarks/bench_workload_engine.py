"""Workload-engine benchmark: streaming traffic at a million operations.

Exercises the :mod:`repro.workloads` subsystem end to end and persists the
numbers to ``BENCH_workload.json``:

* **four traffic shapes** — constant, ramp, diurnal, flash-crowd — each
  driving the same mid-size deployment (16 nodes × 8 objects, 64 open-loop
  clients) for a fixed op budget, reporting wall-clock ops/s and per-op µs;
* the **acceptance run** — 1,000,000 operations, open loop, 64 nodes × 16
  objects, Zipf 0.99 popularity, 90/10 read mix — with three claims:

  1. **lazy scheduling** — peak pending schedule events equals the stream
     count at both 100 k and 1 M ops: schedule memory is independent of the
     total op count;
  2. **determinism** — a seeded replay of the full million-op run issues
     bit-identical op/write/event counts;
  3. the committed ops/s + per-op µs trajectory (regression-gated by
     ``check_bench_regression.py``).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, Tuple

from repro.core.config import AdaptationMode, IdeaConfig
from repro.core.deployment import DeploymentBuilder, IdeaDeployment
from repro.workloads import (
    ClientPopulation,
    ConstantRate,
    DiurnalRate,
    FlashCrowdRate,
    OpMix,
    RampRate,
    TrafficDriver,
    ZipfPopularity,
)

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_workload.json"

#: the four committed traffic shapes
SHAPES = ("constant", "ramp", "diurnal", "flash_crowd")

# ---- shape scenario (shared with check_bench_regression's rerun gate) ----
SHAPE_NODES = 16
SHAPE_OBJECTS = 8
SHAPE_CLIENTS = 64
SHAPE_RATE = 8.0            # ops/s per client at the baseline
SHAPE_OPS = 50_000
SHAPE_SEED = 37

# ---- acceptance scenario (the ISSUE's million-op open-loop run) ----------
ACCEPT_NODES = 64
ACCEPT_OBJECTS = 16
ACCEPT_CLIENTS = 256
ACCEPT_RATE = 40.0
ACCEPT_ZIPF = 0.99
ACCEPT_READS = 0.9
ACCEPT_OPS = 1_000_000
ACCEPT_SEED = 17


def _shape_schedule(name: str):
    if name == "constant":
        return ConstantRate(SHAPE_RATE)
    if name == "ramp":
        return RampRate(SHAPE_RATE / 4, SHAPE_RATE * 2, duration=60.0)
    if name == "diurnal":
        return DiurnalRate(SHAPE_RATE, amplitude=0.8, period=60.0)
    if name == "flash_crowd":
        return FlashCrowdRate(SHAPE_RATE / 2, SHAPE_RATE * 6, at=20.0,
                              ramp=4.0, hold=10.0)
    raise ValueError(f"unknown shape {name!r}")


def _build(num_nodes: int, num_objects: int, seed: int,
           population: ClientPopulation,
           max_ops: int) -> IdeaDeployment:
    config = IdeaConfig(mode=AdaptationMode.HINT_BASED, hint_level=0.0,
                        background_period=None)
    builder = DeploymentBuilder(num_nodes=num_nodes, seed=seed)
    for i in range(num_objects):
        builder.add_object(f"obj{i:02d}", config, start_background=False)
    builder.add_traffic([population], max_ops=max_ops)
    return builder.start_overlay_services().build()


def _harvest(driver: TrafficDriver, deployment: IdeaDeployment,
             wall: float) -> Dict[str, object]:
    counters = driver.counters()
    ops = counters["ops_issued"]
    return {
        **counters,
        "events_processed": deployment.sim.events_processed,
        "simulated_seconds": round(deployment.sim.now, 6),
        "wall_seconds": round(wall, 3),
        "ops_per_second": round(ops / wall, 1),
        "us_per_op": round(wall / ops * 1e6, 2),
    }


def run_shape(shape: str, *, max_ops: int = SHAPE_OPS) -> Dict[str, object]:
    """One committed traffic-shape point (also rerun by the regression gate)."""
    population = ClientPopulation(
        name=f"shape-{shape}", num_clients=SHAPE_CLIENTS,
        popularity=ZipfPopularity(SHAPE_OBJECTS, 0.99), mix=OpMix(0.9),
        schedule=_shape_schedule(shape))
    deployment = _build(SHAPE_NODES, SHAPE_OBJECTS, SHAPE_SEED,
                        population, max_ops)
    driver: TrafficDriver = deployment.traffic
    start = time.perf_counter()
    driver.run()
    wall = time.perf_counter() - start
    result = _harvest(driver, deployment, wall)
    result["schedule"] = population.schedule.describe()
    return result


def run_acceptance(*, max_ops: int = ACCEPT_OPS) -> Dict[str, object]:
    """The ISSUE's acceptance scenario at ``max_ops`` operations."""
    population = ClientPopulation(
        name="web", num_clients=ACCEPT_CLIENTS,
        popularity=ZipfPopularity(ACCEPT_OBJECTS, ACCEPT_ZIPF),
        mix=OpMix(ACCEPT_READS),
        schedule=ConstantRate(ACCEPT_RATE))
    deployment = _build(ACCEPT_NODES, ACCEPT_OBJECTS, ACCEPT_SEED,
                        population, max_ops)
    driver: TrafficDriver = deployment.traffic
    start = time.perf_counter()
    driver.run()
    wall = time.perf_counter() - start
    return _harvest(driver, deployment, wall)


def _replay_fingerprint(result: Dict[str, object]) -> Tuple:
    return (result["ops_issued"], result["reads_issued"],
            result["writes_issued"], result["writes_applied"],
            result["events_processed"], result["simulated_seconds"])


def bench_workload_engine(benchmark):
    shapes: Dict[str, Dict[str, object]] = {}

    def run_all_shapes() -> Dict[str, Dict[str, object]]:
        for shape in SHAPES:
            shapes[shape] = run_shape(shape)
        return shapes

    benchmark.pedantic(run_all_shapes, rounds=1, iterations=1)
    print()
    for shape, result in shapes.items():
        print(f"  {shape:>12}: {result['ops_issued']} ops in "
              f"{result['wall_seconds']:.2f}s = {result['ops_per_second']:,.0f} ops/s "
              f"({result['us_per_op']:.1f} µs/op), "
              f"{result['writes_applied']} writes, "
              f"peak pending {result['peak_pending_events']}")
        assert result["ops_issued"] == SHAPE_OPS
        assert result["writes_applied"] > 0
        # Lazy scheduling: never more pending arrivals than streams.
        assert result["peak_pending_events"] <= result["streams"]

    # ---- acceptance: 1M ops, schedule memory independent of op count ----
    probe = run_acceptance(max_ops=ACCEPT_OPS // 10)
    full = run_acceptance()
    print(f"  acceptance ({ACCEPT_OPS} ops, {ACCEPT_NODES} nodes × "
          f"{ACCEPT_OBJECTS} objects, zipf {ACCEPT_ZIPF}, "
          f"{ACCEPT_READS:.0%} reads): {full['wall_seconds']:.1f}s = "
          f"{full['ops_per_second']:,.0f} ops/s ({full['us_per_op']:.1f} µs/op)")
    assert full["ops_issued"] == ACCEPT_OPS
    # Peak schedule state equals the stream count at both op budgets —
    # memory does not grow with the op count.
    assert full["peak_pending_events"] == ACCEPT_CLIENTS
    assert probe["peak_pending_events"] == full["peak_pending_events"]

    # ---- seeded replay: bit-identical op/write/event counts ----
    replay = run_acceptance()
    assert _replay_fingerprint(replay) == _replay_fingerprint(full), \
        "million-op acceptance run did not replay bit-identically"
    print(f"  replay: identical ({full['ops_issued']} ops, "
          f"{full['writes_applied']} writes, "
          f"{full['events_processed']} events)")

    OUTPUT_PATH.write_text(json.dumps({
        "engine": {
            "scenario": {
                "num_nodes": SHAPE_NODES, "num_objects": SHAPE_OBJECTS,
                "clients": SHAPE_CLIENTS, "rate_per_client": SHAPE_RATE,
                "zipf_skew": 0.99, "read_fraction": 0.9,
                "max_ops": SHAPE_OPS, "seed": SHAPE_SEED,
            },
            "shapes": shapes,
        },
        "acceptance": {
            "scenario": {
                "num_nodes": ACCEPT_NODES, "num_objects": ACCEPT_OBJECTS,
                "clients": ACCEPT_CLIENTS, "rate_per_client": ACCEPT_RATE,
                "zipf_skew": ACCEPT_ZIPF, "read_fraction": ACCEPT_READS,
                "max_ops": ACCEPT_OPS, "seed": ACCEPT_SEED,
            },
            "result": full,
            "memory_probe": probe,
            "replay_identical": True,
        },
    }, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    print(f"\nwrote {OUTPUT_PATH}")
