"""Figure 2: the detection-speed versus overhead trade-off, made quantitative.

Paper claim: IDEA "achieves faster detection and resolution (thus stronger
consistency guarantee) than optimistic consistency control ... with a
slightly higher cost; its overhead is much smaller than other protocols, such
as strong consistency".  The benchmark runs the same conflicting-update
workload over optimistic anti-entropy, TACT-style bounded divergence, IDEA
and primary-copy strong consistency and checks the orderings.
"""

from __future__ import annotations

from repro.experiments.fig2_tradeoff import format_report, run_tradeoff_experiment


def bench_fig2_tradeoff(benchmark):
    result = benchmark.pedantic(
        lambda: run_tradeoff_experiment(num_nodes=12, num_writers=4, period=5.0,
                                        duration=60.0, settle=40.0, seed=31),
        rounds=1, iterations=1)
    print()
    print(format_report(result))

    optimistic = result.row("OptimisticAntiEntropy")
    tact = result.row("TactBoundedConsistency")
    idea = result.row("IDEA")
    strong = result.row("StrongConsistencyPrimary")

    # Overhead ordering: optimistic < IDEA < strong (the paper's Figure 2 axis).
    assert optimistic.messages_per_update < idea.messages_per_update
    assert idea.messages_per_update < strong.messages_per_update

    # Detection/convergence speed: IDEA far faster than optimistic.
    assert idea.convergence_delay < optimistic.convergence_delay

    # Only strong consistency blocks writers synchronously.
    assert strong.writer_latency > 0.05
    assert optimistic.writer_latency == 0.0
    assert idea.writer_latency == 0.0

    # Strong consistency and TACT both converge; strong does so fastest.
    assert strong.converged
    assert strong.convergence_delay < tact.convergence_delay
