"""Ablation: how well does the top layer capture inconsistencies?

The paper's two-layer design rests on the claim (from the authors' earlier
IDF work) that the small top layer catches the vast majority (> 95 %) of
inconsistencies, leaving the TTL-bounded bottom-layer sweep as a rare backup.
This ablation measures the capture probability directly on the reproduction:
a varying fraction of updates is issued by "cold" bottom-layer nodes instead
of the established top-layer writers, and we measure how many conflicting
updates were visible to top-layer detection at the moment of the next
resolution round.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.config import AdaptationMode, IdeaConfig
from repro.core.deployment import IdeaDeployment
from repro.experiments.report import format_table


def _run_capture_experiment(bottom_writer_fraction: float, *, num_nodes: int = 20,
                            rounds: int = 10, seed: int = 41) -> float:
    """Return the fraction of updates that top-layer detection captured."""
    deployment = IdeaDeployment(num_nodes=num_nodes, seed=seed)
    config = IdeaConfig(mode=AdaptationMode.ON_DEMAND, hint_level=0.0,
                        background_period=None)
    deployment.register_object("obj", config, start_background=False)
    core_writers = deployment.node_ids[:4]
    cold_writers = deployment.node_ids[4:]
    rng = deployment.sim.random.stream("ablation.toplayer")

    issued = 0
    captured = 0
    for k in range(rounds):
        writers_this_round: List[str] = []
        for writer in core_writers:
            if rng.random() < bottom_writer_fraction:
                writers_this_round.append(
                    cold_writers[int(rng.integers(0, len(cold_writers)))])
            else:
                writers_this_round.append(writer)
        for writer in writers_this_round:
            deployment.middleware("obj", writer).write(f"{writer}-{k}",
                                                       metadata_delta=1.0)
        issued += len(writers_this_round)
        deployment.run(until=deployment.sim.now + 5.0)

        # What does the top layer collectively know right now?
        top = deployment.top_layer("obj")
        known = set()
        for member in top:
            known |= deployment.stores[member].replica("obj").known_update_keys()
        captured = len({k for k in known})
    return captured / max(issued, 1)


def bench_abl_toplayer_capture(benchmark):
    fractions = (0.0, 0.25, 0.5)

    def run_all() -> Dict[float, float]:
        return {f: _run_capture_experiment(f) for f in fractions}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    print(format_table(
        ["fraction of writes from bottom-layer nodes", "top-layer capture rate"],
        [[f"{f:.0%}", f"{results[f]:.1%}"] for f in fractions],
        title="Ablation — top-layer inconsistency capture probability"))

    # With all activity inside the established top layer, capture is ~100 %
    # (the paper's > 95 % claim); it degrades as activity spreads, which is
    # exactly why the bottom-layer sweep and rollback exist.
    assert results[0.0] > 0.95
    assert results[0.5] <= results[0.0]
