"""Ablation: back-off suppression of redundant active resolutions.

Section 4.5.2's two-phase protocol uses a random back-off so that when
several top-layer members notice the same inconsistency at once, only one of
them actually runs the (expensive) resolution procedure and the others cancel
("the back-off process is used to suppress redundant resolution process to
save bandwidth").  This ablation triggers an active resolution from all four
writers simultaneously, with and without the suppression window, and compares
how many full resolution rounds (and protocol messages) result.
"""

from __future__ import annotations

from typing import Dict

from repro.core.config import AdaptationMode, IdeaConfig
from repro.core.deployment import IdeaDeployment
from repro.experiments.report import format_table


def _run(suppression_jitter: float, *, seed: int = 47) -> Dict[str, float]:
    deployment = IdeaDeployment(num_nodes=12, seed=seed)
    config = IdeaConfig(mode=AdaptationMode.ON_DEMAND, hint_level=0.0,
                        background_period=None)
    deployment.register_object("obj", config, start_background=False)
    writers = deployment.node_ids[:4]

    # Create divergence.
    for writer in writers:
        deployment.middleware("obj", writer).write(f"{writer} update", metadata_delta=1.0)
    deployment.run(until=deployment.sim.now + 2.0)

    before = deployment.resolution_messages()
    for writer in writers:
        deployment.middleware("obj", writer).resolution.start_active_resolution(
            suppression_jitter=suppression_jitter)
    deployment.run(until=deployment.sim.now + 20.0)

    histories = [deployment.middleware("obj", w).resolution.history for w in writers]
    rounds = [r for history in histories for r in history if r.kind == "active"]
    completed = sum(1 for r in rounds if not r.aborted)
    suppressed = sum(1 for r in rounds if r.aborted)
    return {"completed": completed, "suppressed": suppressed,
            "messages": deployment.resolution_messages() - before}


def bench_abl_backoff_suppression(benchmark):
    def run_both():
        return {"without": _run(0.0), "with": _run(1.0)}

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print()
    print(format_table(
        ["suppression", "completed rounds", "suppressed attempts", "resolution messages"],
        [[name, r["completed"], r["suppressed"], r["messages"]]
         for name, r in results.items()],
        title="Ablation — back-off suppression of concurrent initiators"))

    # Without suppression every initiator runs a full round; with it, fewer
    # full rounds run and less resolution traffic is generated.
    assert results["without"]["completed"] >= results["with"]["completed"]
    assert results["with"]["suppressed"] >= 1
    assert results["with"]["messages"] <= results["without"]["messages"]
