"""Space-partitioned backend benchmark: speedup with bit-identical state.

Runs the 512-node Figure 9 workload point (512 objects, 4 writers each,
250 ms write period, 15 s simulated) twice:

* once on the **single-process oracle** (``shards=1`` — today's engine), and
* once **space-partitioned** over 4 spawn-started shard processes under the
  conservative lookahead window,

then asserts the sharded run reproduces the oracle's fingerprint exactly
(events executed, writes applied, messages sent/delivered, and the SHA-256
over every replica's final vector/metadata state).  Wall clocks, per-window
telemetry and the fingerprints are persisted to ``BENCH_shard.json`` for
the regression gate, together with a seconds-sized **probe point** whose
oracle fingerprint the gate re-runs live at shards=1 and shards=2.

The speedup floor (≥ 1.8× at 4 shards) is only asserted on hosts with at
least 4 CPU cores — on a 1-core runner the lockstep windows cannot overlap,
but the determinism contract is gated unconditionally, and the recorded
numbers always include ``cpu_count`` so readers can interpret them honestly.

``SHARD_BENCH_SMOKE=1`` shrinks the point to a 64-node/2-shard run in
seconds and writes ``BENCH_shard_smoke.json`` instead (CI smoke path; the
committed ``BENCH_shard.json`` is only ever produced by the full point).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.shard.scenarios import run_shard_point

#: the measured point: dense enough that each ~7 ms lookahead window holds
#: hundreds of events, so IPC barriers amortise and sharding can win
MAIN_POINT = dict(num_nodes=512, num_objects=512, writers_per_object=4,
                  write_period=0.25, duration=15.0, seed=2029)
SMOKE_POINT = dict(num_nodes=64, num_objects=16, writers_per_object=4,
                   write_period=0.25, duration=5.0, seed=2029)
#: seconds-sized point the regression gate re-runs live against the
#: committed fingerprint (shards=1 and shards=2 must both reproduce it)
PROBE_POINT = dict(num_nodes=64, num_objects=16, writers_per_object=4,
                   write_period=0.5, duration=5.0, seed=2029)

SHARDS = 4
MIN_SPEEDUP = 1.8
MIN_SPEEDUP_CORES = 4

_SMOKE = os.environ.get("SHARD_BENCH_SMOKE", "") not in ("", "0")

OUTPUT_PATH = Path(__file__).resolve().parent.parent / (
    "BENCH_shard_smoke.json" if _SMOKE else "BENCH_shard.json")


def bench_shard(benchmark):
    point = SMOKE_POINT if _SMOKE else MAIN_POINT
    shards = 2 if _SMOKE else SHARDS
    cpu_count = os.cpu_count() or 1

    # Single-process oracle: ground truth the sharded run must reproduce.
    serial_started = time.perf_counter()
    serial = run_shard_point(**point, shards=1)
    serial_wall = time.perf_counter() - serial_started

    # Sharded leg, timed as the benchmark's measured operation.
    sharded = benchmark.pedantic(
        lambda: run_shard_point(**point, shards=shards),
        rounds=1, iterations=1)

    # Determinism contract, gated unconditionally.
    fingerprint_match = sharded.fingerprint() == serial.fingerprint()
    assert fingerprint_match, (
        f"sharded run diverged from the oracle:\n"
        f"  oracle : {serial.fingerprint()}\n"
        f"  sharded: {sharded.fingerprint()}")

    speedup = serial_wall / sharded.wall_seconds if sharded.wall_seconds else 0.0
    print(f"\nserial {serial_wall:.2f}s, sharded (shards={shards}) "
          f"{sharded.wall_seconds:.2f}s, speedup {speedup:.2f}x "
          f"on {cpu_count} core(s); window {sharded.window * 1e3:.2f} ms, "
          f"{sharded.windows} windows, "
          f"{sharded.mean_window_events:.0f} events/window")

    # The probe the regression gate replays live (cheap on any host).
    probe = run_shard_point(**PROBE_POINT, shards=1)

    OUTPUT_PATH.write_text(json.dumps({
        "experiment": "shard_fig9_point",
        "smoke": _SMOKE,
        "point": point,
        "shards": shards,
        "cpu_count": cpu_count,
        "serial_wall_seconds": serial_wall,
        "sharded_wall_seconds": sharded.wall_seconds,
        "speedup": speedup,
        "fingerprint_match": fingerprint_match,
        "fingerprints": serial.fingerprint(),
        "telemetry": sharded.telemetry(),
        "probe": {"point": PROBE_POINT,
                  "fingerprints": probe.fingerprint()},
    }, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    print(f"wrote {OUTPUT_PATH.name}")

    # Honest speedup gate: only where the cores exist to deliver it.
    if cpu_count >= MIN_SPEEDUP_CORES:
        assert speedup >= MIN_SPEEDUP, (
            f"shard speedup {speedup:.2f}x below the {MIN_SPEEDUP}x floor "
            f"on a {cpu_count}-core host")
