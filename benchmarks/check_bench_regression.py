#!/usr/bin/env python
"""Benchmark regression gate for CI.

Reruns the committed benchmark scenarios and fails when drift is detected:

* ``BENCH_multiobject.json`` — the 8-node × 8-object × 300 s ablation: the
  rerun must process exactly the baseline's event and write counts
  (determinism) and stay within ``--threshold`` of the committed per-object
  wall-clock;
* ``BENCH_churn.json`` — the smallest committed churn points (all loss
  rates): event/write counts must match exactly, and per-point wall-clock
  is held to the same threshold when the committed point is long enough to
  rise above timer noise (≥ 1 s);
* ``BENCH_workload.json`` — the committed constant-shape traffic point:
  op/write/event counts must match exactly and per-op µs (ops/s) must stay
  within the threshold;
* ``BENCH_longrun.json`` — the committed 100k-op long-run point (stability
  frontier + checkpoint/truncation enabled): op/write/event/fold counts
  must match exactly, per-op µs must stay within the threshold, the peak
  retained-entry gauge must stay below the committed live-entry bound, and
  the committed 10M-vs-100k flatness ratio must respect its budget;
* ``BENCH_farm.json`` — the sweep-farm reference grid: the committed run
  must record ``fingerprint_match`` (parallel == serial oracle), a live
  serial-vs-``jobs=2`` rerun of a grid subset must reproduce the committed
  per-point fingerprints exactly, serial wall-clock is held to the
  threshold when the committed grid is long enough, and the committed
  speedup must clear its floor when the committed host had the cores;
* ``BENCH_shard.json`` — the space-partitioned 512-node Figure 9 point:
  the committed run must record ``fingerprint_match`` (sharded == serial
  oracle), a live rerun of the seconds-sized probe point at ``shards=1``
  and ``shards=2`` must reproduce the committed probe fingerprints
  exactly, and the committed 4-shard speedup must clear its floor when
  the committed host had the cores;
* ``BENCH_worlds.json`` — the committed world catalog: every catalog
  world's pinned fingerprint must match the committed trace (no silent
  re-pins), a live serial + ``jobs=2`` rerun of a catalog subset must
  reproduce the committed fingerprints bit-identically, and the subset's
  serial wall-clock is held to the threshold when long enough.

Usage::

    PYTHONPATH=src python benchmarks/check_bench_regression.py [--threshold 0.25]

Exit status 0 = within budget, 1 = regression or determinism mismatch.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.experiments.fig9_scalability import run_multiobject_experiment
from repro.experiments.fig_churn_availability import fingerprint, run_churn_point
from repro.farm import PointSpec, SweepFarm, resolve_callable

ROOT = Path(__file__).resolve().parent.parent
MULTIOBJECT_PATH = ROOT / "BENCH_multiobject.json"
CHURN_PATH = ROOT / "BENCH_churn.json"
WORKLOAD_PATH = ROOT / "BENCH_workload.json"
LONGRUN_PATH = ROOT / "BENCH_longrun.json"
FARM_PATH = ROOT / "BENCH_farm.json"
SHARD_PATH = ROOT / "BENCH_shard.json"
WORLDS_PATH = ROOT / "BENCH_worlds.json"

#: catalog worlds the worlds gate replays live (serial + jobs=2); the full
#: catalog is bench_worlds' job, the gate needs enough to catch drift across
#: the scale suite and the stress machinery (loss tiers, fault schedules)
WORLDS_RERUN = ("wan-20", "edge-lossy", "churn-heavy")

#: speedup floor the committed farm benchmark must clear, provided the host
#: that produced it had at least this many cores (mirrors bench_farm.py)
FARM_MIN_SPEEDUP = 3.0
FARM_MIN_SPEEDUP_CORES = 4

#: speedup floor the committed shard benchmark must clear, provided the
#: host that produced it had the cores (mirrors bench_shard.py)
SHARD_MIN_SPEEDUP = 1.8
SHARD_MIN_SPEEDUP_CORES = 4
#: grid points to re-execute live (serial + jobs=2); the full grid is the
#: benchmark's job, the gate just needs enough to catch drift
FARM_RERUN_POINTS = 2

#: wall-clock gating needs a baseline long enough to rise above scheduler
#: noise; shorter committed points are gated on exact counts only
MIN_WALL_GATE_SECONDS = 1.0


def check_multiobject(threshold: float) -> bool:
    """Gate the multi-object ablation; returns True on failure."""
    committed = json.loads(MULTIOBJECT_PATH.read_text(encoding="utf-8"))
    baseline = committed["ablation"]["runtime_architecture"]
    base_per_object = baseline["per_object_seconds"][0]
    base_events = baseline["events_processed"][0]
    base_writes = baseline["writes_applied"][0]

    result = run_multiobject_experiment(
        num_nodes=baseline["num_nodes"], object_counts=(8,),
        duration=baseline["duration_simulated_s"], write_period=0.4,
        seed=11, shared_cache=True)
    per_object = result.per_object_seconds()[0]
    ratio = per_object / base_per_object

    print("== multiobject ==")
    print(f"committed baseline: {base_per_object * 1e3:.1f} ms/object "
          f"({base_events} events, {base_writes} writes)")
    print(f"this run:           {per_object * 1e3:.1f} ms/object "
          f"({result.events_processed[0]} events, {result.writes_applied[0]} writes)")
    print(f"ratio: {ratio:.2f}× (budget ≤ {1 + threshold:.2f}×)")

    failed = False
    if result.events_processed[0] != base_events:
        print("FAIL: events processed diverged from the committed baseline "
              "(determinism broken)")
        failed = True
    if result.writes_applied[0] != base_writes:
        print("FAIL: writes applied diverged from the committed baseline "
              "(determinism broken)")
        failed = True
    if ratio > 1 + threshold:
        print(f"FAIL: per-object wall-clock regressed {ratio:.2f}× "
              f"> {1 + threshold:.2f}× budget")
        failed = True
    return failed


def check_churn(threshold: float) -> bool:
    """Gate the committed churn points at the smallest deployment size."""
    if not CHURN_PATH.exists():
        print("== churn == (no committed BENCH_churn.json, skipping)")
        return False
    committed = json.loads(CHURN_PATH.read_text(encoding="utf-8"))
    points = committed["points"]
    smallest = min(p["num_nodes"] for p in points)
    gated = [p for p in points if p["num_nodes"] == smallest]

    print("== churn ==")
    failed = False
    for base in gated:
        rerun = run_churn_point(
            num_nodes=base["num_nodes"],
            loss_probability=base["loss_probability"],
            kill_fraction=base["kill_fraction"],
            duration=base["duration_simulated_s"], seed=base["seed"])
        label = (f"{base['num_nodes']} nodes, "
                 f"loss {base['loss_probability']:.0%}")
        print(f"{label}: {rerun.events_processed} events / "
              f"{rerun.writes_applied} writes "
              f"(committed {base['events_processed']} / {base['writes_applied']}), "
              f"{rerun.wall_seconds:.2f}s wall")
        if rerun.events_processed != base["events_processed"]:
            print(f"FAIL: {label}: event count diverged (determinism broken)")
            failed = True
        if rerun.writes_applied != base["writes_applied"]:
            print(f"FAIL: {label}: write count diverged (determinism broken)")
            failed = True
        base_wall = base.get("wall_seconds", 0.0)
        if base_wall >= MIN_WALL_GATE_SECONDS:
            ratio = rerun.wall_seconds / base_wall
            print(f"{label}: wall ratio {ratio:.2f}× (budget ≤ {1 + threshold:.2f}×)")
            if ratio > 1 + threshold:
                print(f"FAIL: {label}: wall-clock regressed {ratio:.2f}×")
                failed = True
        else:
            print(f"{label}: committed wall {base_wall:.2f}s < "
                  f"{MIN_WALL_GATE_SECONDS:g}s — noise-dominated, counts only")
    return failed


def check_workload(threshold: float) -> bool:
    """Gate the committed constant-shape traffic-engine point."""
    if not WORKLOAD_PATH.exists():
        print("== workload == (no committed BENCH_workload.json, skipping)")
        return False
    from bench_workload_engine import run_shape

    committed = json.loads(WORKLOAD_PATH.read_text(encoding="utf-8"))
    base = committed["engine"]["shapes"]["constant"]
    rerun = run_shape("constant")
    ratio = rerun["us_per_op"] / base["us_per_op"]

    print("== workload ==")
    print(f"committed baseline: {base['us_per_op']:.1f} µs/op "
          f"({base['ops_per_second']:,.0f} ops/s, {base['ops_issued']} ops, "
          f"{base['events_processed']} events)")
    print(f"this run:           {rerun['us_per_op']:.1f} µs/op "
          f"({rerun['ops_per_second']:,.0f} ops/s, {rerun['ops_issued']} ops, "
          f"{rerun['events_processed']} events)")
    print(f"ratio: {ratio:.2f}× (budget ≤ {1 + threshold:.2f}×)")

    failed = False
    for key in ("ops_issued", "reads_issued", "writes_applied",
                "events_processed"):
        if rerun[key] != base[key]:
            print(f"FAIL: {key} diverged from the committed baseline "
                  "(determinism broken)")
            failed = True
    if ratio > 1 + threshold:
        print(f"FAIL: per-op cost regressed {ratio:.2f}× "
              f"> {1 + threshold:.2f}× budget (ops/s regression)")
        failed = True
    return failed


def check_longrun(threshold: float) -> bool:
    """Gate the committed 100k-op stability/truncation point."""
    if not LONGRUN_PATH.exists():
        print("== longrun == (no committed BENCH_longrun.json, skipping)")
        return False
    from bench_longrun import run_point

    committed = json.loads(LONGRUN_PATH.read_text(encoding="utf-8"))
    base = committed["points"]["100k"]
    bound = committed["live_entry_bound"]
    rerun = run_point(100_000, spans=base.get("spans", 1))
    # CPU time: the long-run spans are short enough that wall-clock noise
    # on shared runners would dominate a wall-based ratio.
    ratio = rerun["us_per_op_cpu"] / base["us_per_op_cpu"]

    print("== longrun ==")
    print(f"committed baseline: {base['us_per_op_cpu']:.1f} µs/op (cpu) "
          f"({base['ops_issued']} ops, {base['events_processed']} events, "
          f"{base['entries_folded']} folded, "
          f"peak retained {base['peak_retained_entries']})")
    print(f"this run:           {rerun['us_per_op_cpu']:.1f} µs/op (cpu) "
          f"({rerun['ops_issued']} ops, {rerun['events_processed']} events, "
          f"{rerun['entries_folded']} folded, "
          f"peak retained {rerun['peak_retained_entries']})")
    print(f"ratio: {ratio:.2f}× (budget ≤ {1 + threshold:.2f}×)")

    failed = False
    for key in ("ops_issued", "reads_issued", "writes_applied",
                "events_processed", "entries_folded",
                "peak_retained_entries"):
        if rerun[key] != base[key]:
            print(f"FAIL: {key} diverged from the committed baseline "
                  "(determinism broken)")
            failed = True
    if rerun["peak_retained_entries"] > bound:
        print(f"FAIL: peak retained entries {rerun['peak_retained_entries']} "
              f"breached the live-entry bound {bound}")
        failed = True
    if ratio > 1 + threshold:
        print(f"FAIL: per-op cost regressed {ratio:.2f}× "
              f"> {1 + threshold:.2f}× budget")
        failed = True
    flatness = committed.get("flatness_ratio")
    budget = committed.get("flatness_budget", 1.10)
    if flatness is not None and flatness > budget:
        print(f"FAIL: committed flatness ratio {flatness:.3f}× exceeds its "
              f"budget {budget:.2f}× — long runs are no longer flat-cost")
        failed = True
    return failed


def check_farm(threshold: float) -> bool:
    """Gate the committed sweep-farm reference grid."""
    if not FARM_PATH.exists():
        print("== farm == (no committed BENCH_farm.json, skipping)")
        return False
    committed = json.loads(FARM_PATH.read_text(encoding="utf-8"))
    grid = committed["grid"]
    point_fn = resolve_callable(grid["point_function"])

    print("== farm ==")
    print(f"committed: {grid['num_points']} points, "
          f"serial {committed['serial_wall_seconds']:.2f}s, "
          f"jobs={committed['jobs']} {committed['parallel_wall_seconds']:.2f}s, "
          f"speedup {committed['speedup']:.2f}x "
          f"on {committed['cpu_count']} core(s)")

    failed = False
    if not committed.get("fingerprint_match"):
        print("FAIL: committed run did not record fingerprint_match "
              "(parallel farm diverged from the serial oracle)")
        failed = True

    # Live determinism probe: rebuild the first points of the committed grid
    # from its recorded seeds, run them serially AND through a 2-worker farm,
    # and hold both against the committed fingerprints.
    subset = list(range(min(FARM_RERUN_POINTS, grid["num_points"])))
    # The labels carry the axis values; decode them back into kwargs.
    specs = []
    for i in subset:
        _, loss_label, kill_label = grid["labels"][i].split("/")
        specs.append(PointSpec.build(
            point_fn, index=i, labels=tuple(grid["labels"][i].split("/")),
            seed=grid["seeds"][i], num_nodes=grid["num_nodes"],
            loss_probability=float(loss_label.removeprefix("loss")),
            kill_fraction=float(kill_label.removeprefix("kill")),
            duration=grid["duration_simulated_s"]))

    serial = SweepFarm(specs, jobs=1).run()
    farmed = SweepFarm(specs, jobs=2).run()
    for i, (s, f) in enumerate(zip(serial.values(), farmed.values())):
        base_print = committed["fingerprints"][i]
        for name, rerun_print in (("serial", fingerprint(s)),
                                  ("jobs=2", fingerprint(f))):
            if rerun_print != base_print:
                print(f"FAIL: point {i} ({specs[i].label}) {name} rerun "
                      "diverged from the committed fingerprint "
                      "(determinism broken)")
                failed = True
    if not failed:
        print(f"{len(specs)} grid points re-run serial + jobs=2: "
              "fingerprints match the committed trace")

    # Serial wall-clock regression against the committed serial leg's own
    # per-point walls.  (The per-point telemetry block is from the parallel
    # leg, where worker contention inflates point walls — don't use it.)
    serial_walls = committed["serial_point_wall_seconds"]
    base_subset_wall = sum(serial_walls[i] for i in subset)
    rerun_wall = sum(o.wall_seconds for o in serial.outcomes)
    if base_subset_wall >= MIN_WALL_GATE_SECONDS:
        ratio = rerun_wall / base_subset_wall
        print(f"serial wall ratio {ratio:.2f}x (budget <= {1 + threshold:.2f}x)")
        if ratio > 1 + threshold:
            print(f"FAIL: serial point wall-clock regressed {ratio:.2f}x")
            failed = True
    else:
        print(f"committed subset wall {base_subset_wall:.2f}s < "
              f"{MIN_WALL_GATE_SECONDS:g}s — noise-dominated, counts only")

    # Speedup floor, honoured only when the committed host could deliver it.
    if committed["cpu_count"] >= FARM_MIN_SPEEDUP_CORES:
        if committed["speedup"] < FARM_MIN_SPEEDUP:
            print(f"FAIL: committed speedup {committed['speedup']:.2f}x is "
                  f"below the {FARM_MIN_SPEEDUP}x floor despite "
                  f"{committed['cpu_count']} cores")
            failed = True
    else:
        print(f"speedup floor waived: committed host had only "
              f"{committed['cpu_count']} core(s)")
    return failed


def check_shard(threshold: float) -> bool:
    """Gate the committed space-partitioned Figure 9 point."""
    del threshold  # wall-clock is host-bound; the gate is determinism + floor
    if not SHARD_PATH.exists():
        print("== shard == (no committed BENCH_shard.json, skipping)")
        return False
    from repro.shard.scenarios import run_shard_point

    committed = json.loads(SHARD_PATH.read_text(encoding="utf-8"))

    print("== shard ==")
    print(f"committed: {committed['point']['num_nodes']} nodes, "
          f"serial {committed['serial_wall_seconds']:.2f}s, "
          f"shards={committed['shards']} "
          f"{committed['sharded_wall_seconds']:.2f}s, "
          f"speedup {committed['speedup']:.2f}x "
          f"on {committed['cpu_count']} core(s)")

    failed = False
    if not committed.get("fingerprint_match"):
        print("FAIL: committed run did not record fingerprint_match "
              "(sharded run diverged from the serial oracle)")
        failed = True

    # Live determinism probe: replay the committed probe point on today's
    # engine, in-process (shards=1) and across a real 2-shard worker pair,
    # and hold both against the committed fingerprint.
    probe = committed["probe"]
    base_print = probe["fingerprints"]
    for shards in (1, 2):
        rerun = run_shard_point(**probe["point"], shards=shards)
        if rerun.fingerprint() != base_print:
            print(f"FAIL: probe rerun at shards={shards} diverged from the "
                  f"committed fingerprint (determinism broken):\n"
                  f"  committed: {base_print}\n"
                  f"  rerun    : {rerun.fingerprint()}")
            failed = True
    if not failed:
        print("probe re-run at shards=1 and shards=2: fingerprints match "
              "the committed trace")

    # Speedup floor, honoured only when the committed host could deliver it.
    if committed["cpu_count"] >= SHARD_MIN_SPEEDUP_CORES:
        if committed["speedup"] < SHARD_MIN_SPEEDUP:
            print(f"FAIL: committed speedup {committed['speedup']:.2f}x is "
                  f"below the {SHARD_MIN_SPEEDUP}x floor despite "
                  f"{committed['cpu_count']} cores")
            failed = True
    else:
        print(f"speedup floor waived: committed host had only "
              f"{committed['cpu_count']} core(s)")
    return failed


def check_worlds(threshold: float) -> bool:
    """Gate the committed world catalog: pins, farm determinism, wall."""
    if not WORLDS_PATH.exists():
        print("== worlds == (no committed BENCH_worlds.json, skipping)")
        return False
    from repro.experiments.fig_world_matrix import build_world_matrix_grid
    from repro.worlds import load_catalog

    committed = json.loads(WORLDS_PATH.read_text(encoding="utf-8"))
    print("== worlds ==")
    print(f"committed: {len(committed['worlds'])} worlds, "
          f"serial {committed['serial_wall_seconds']:.2f}s, "
          f"jobs={committed['jobs']} "
          f"{committed['parallel_wall_seconds']:.2f}s, "
          f"speedup {committed['speedup']:.2f}x "
          f"on {committed['cpu_count']} core(s)")

    failed = False
    if not committed.get("pin_match"):
        print("FAIL: committed run recorded catalog pins diverging from "
              "the benchmark (pin_match false)")
        failed = True

    # Cross-check every catalog pin against the committed trace without
    # running anything: a world re-pinned without re-running bench_worlds
    # (or vice versa) is caught here.
    catalog = load_catalog()
    for name, world in sorted(catalog.items()):
        base = committed["worlds"].get(name)
        if base is None:
            print(f"FAIL: catalog world {name!r} is missing from the "
                  "committed BENCH_worlds.json (re-run bench_worlds)")
            failed = True
            continue
        if world.fingerprint is None:
            print(f"FAIL: catalog world {name!r} carries no pinned "
                  "fingerprint")
            failed = True
        elif dict(world.fingerprint.values) != base["fingerprint"]:
            print(f"FAIL: catalog pin for {name!r} diverges from the "
                  "committed BENCH_worlds.json trace")
            failed = True
    for name in committed["worlds"]:
        if name not in catalog:
            print(f"FAIL: committed world {name!r} no longer exists in the "
                  "catalog (re-run bench_worlds)")
            failed = True

    # Live determinism probe: replay a catalog subset serially AND through
    # a 2-worker farm, holding both against the committed fingerprints.
    rerun = [n for n in WORLDS_RERUN if n in committed["worlds"]]
    specs = build_world_matrix_grid(worlds=rerun)
    serial = SweepFarm(specs, jobs=1).run()
    farmed = SweepFarm(specs, jobs=2).run()
    for name, s, f in zip(rerun, serial.values(), farmed.values()):
        base_print = committed["worlds"][name]["fingerprint"]
        for leg, point in (("serial", s), ("jobs=2", f)):
            if dict(point.fingerprint) != base_print:
                print(f"FAIL: world {name!r} {leg} rerun diverged from the "
                      "committed fingerprint (determinism broken)")
                failed = True
    if not failed:
        print(f"{len(rerun)} worlds re-run serial + jobs=2: fingerprints "
              "match the committed trace")

    base_wall = sum(committed["worlds"][n]["wall_seconds"] for n in rerun)
    rerun_wall = sum(o.wall_seconds for o in serial.outcomes)
    if base_wall >= MIN_WALL_GATE_SECONDS:
        ratio = rerun_wall / base_wall
        print(f"serial wall ratio {ratio:.2f}x (budget <= {1 + threshold:.2f}x)")
        if ratio > 1 + threshold:
            print(f"FAIL: world wall-clock regressed {ratio:.2f}x")
            failed = True
    else:
        print(f"committed subset wall {base_wall:.2f}s < "
              f"{MIN_WALL_GATE_SECONDS:g}s — noise-dominated, counts only")
    return failed


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional wall-clock regression vs the "
                             "committed baselines (default 0.25 = +25%%)")
    parser.add_argument("--only",
                        choices=("multiobject", "churn", "workload", "longrun",
                                 "farm", "shard", "worlds"),
                        default=None,
                        help="run a single gate instead of all seven")
    args = parser.parse_args(argv)

    gates = {
        "multiobject": check_multiobject,
        "churn": check_churn,
        "workload": check_workload,
        "longrun": check_longrun,
        "farm": check_farm,
        "shard": check_shard,
        "worlds": check_worlds,
    }
    selected = [args.only] if args.only else list(gates)
    failed = False
    for name in selected:
        failed |= gates[name](args.threshold)
        print()
    print("FAIL: regression gate tripped" if failed
          else "OK: all gates within regression budget")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
