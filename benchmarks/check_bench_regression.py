#!/usr/bin/env python
"""Benchmark regression gate for CI.

Reruns the multi-object ablation workload committed in
``BENCH_multiobject.json`` (8 nodes × 8 objects × 300 simulated seconds,
shared digest cache) and fails when the measured per-object wall-clock
regresses more than ``--threshold`` (default 25 %) against the committed
baseline.  Determinism is gated too: the rerun must process exactly the
baseline's event and write counts, so a "speedup" that silently drops
simulation work cannot pass.

Usage::

    PYTHONPATH=src python benchmarks/check_bench_regression.py [--threshold 0.25]

Exit status 0 = within budget, 1 = regression or determinism mismatch.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.experiments.fig9_scalability import run_multiobject_experiment

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_multiobject.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional per-object wall-clock regression "
                             "vs the committed baseline (default 0.25 = +25%%)")
    args = parser.parse_args(argv)

    committed = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    baseline = committed["ablation"]["runtime_architecture"]
    base_per_object = baseline["per_object_seconds"][0]
    base_events = baseline["events_processed"][0]
    base_writes = baseline["writes_applied"][0]

    result = run_multiobject_experiment(
        num_nodes=baseline["num_nodes"], object_counts=(8,),
        duration=baseline["duration_simulated_s"], write_period=0.4,
        seed=11, shared_cache=True)
    per_object = result.per_object_seconds()[0]
    ratio = per_object / base_per_object

    print(f"committed baseline: {base_per_object * 1e3:.1f} ms/object "
          f"({base_events} events, {base_writes} writes)")
    print(f"this run:           {per_object * 1e3:.1f} ms/object "
          f"({result.events_processed[0]} events, {result.writes_applied[0]} writes)")
    print(f"ratio: {ratio:.2f}× (budget ≤ {1 + args.threshold:.2f}×)")

    failed = False
    if result.events_processed[0] != base_events:
        print("FAIL: events processed diverged from the committed baseline "
              "(determinism broken)")
        failed = True
    if result.writes_applied[0] != base_writes:
        print("FAIL: writes applied diverged from the committed baseline "
              "(determinism broken)")
        failed = True
    if ratio > 1 + args.threshold:
        print(f"FAIL: per-object wall-clock regressed {ratio:.2f}× "
              f"> {1 + args.threshold:.2f}× budget")
        failed = True
    if not failed:
        print("OK: within regression budget")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
