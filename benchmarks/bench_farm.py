"""Sweep-farm benchmark: parallel speedup with bit-identical results.

Runs a reference churn grid (12 × 64-node points over loss × kill-fraction,
seeded point-by-point with :func:`repro.farm.derive_seed`) twice:

* once through the **serial in-process oracle** (``jobs=1``), and
* once through the **multiprocess farm** (``jobs=4`` by default),

then asserts the parallel run's per-point fingerprints match the serial
oracle point for point.  Wall-clock, per-point telemetry, and the measured
speedup are persisted to ``BENCH_farm.json`` for the regression gate.

The speedup floor (≥ 3× at 4 workers) is only asserted on hosts with at
least 4 CPU cores — on a 1-core CI runner the parallel run cannot be
faster, but the determinism contract is gated unconditionally.  The
recorded numbers always include ``cpu_count`` so readers can interpret
them honestly.

``FARM_BENCH_SMOKE=1`` shrinks the grid to seconds and writes
``BENCH_farm_smoke.json`` instead (CI smoke path; the committed
``BENCH_farm.json`` is only ever produced by the full grid).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import List

from repro.experiments.fig_churn_availability import fingerprint, run_churn_point
from repro.farm import PointSpec, SweepFarm, derive_seed

#: grid axes: loss probability × kill fraction at a fixed 64-node deployment
LOSS_PROBABILITIES = (0.0, 0.01, 0.05, 0.1)
KILL_FRACTIONS = (0.125, 0.25, 0.5)
NUM_NODES = 64
DURATION = 120.0
BASE_SEED = 4242

#: parallel leg worker count and its speedup floor (asserted only when the
#: host actually has that many cores to run them on)
PARALLEL_JOBS = 4
MIN_SPEEDUP = 3.0
MIN_SPEEDUP_CORES = 4

_SMOKE = os.environ.get("FARM_BENCH_SMOKE", "") not in ("", "0")

OUTPUT_PATH = Path(__file__).resolve().parent.parent / (
    "BENCH_farm_smoke.json" if _SMOKE else "BENCH_farm.json")


def build_reference_grid() -> List[PointSpec]:
    """The benchmark grid, seeded per point with ``derive_seed``."""
    num_nodes = 8 if _SMOKE else NUM_NODES
    duration = 30.0 if _SMOKE else DURATION
    losses = LOSS_PROBABILITIES[:2] if _SMOKE else LOSS_PROBABILITIES
    kills = KILL_FRACTIONS[:1] if _SMOKE else KILL_FRACTIONS
    specs: List[PointSpec] = []
    for loss in losses:
        for kill in kills:
            labels = ("farm-ref", f"loss{loss:g}", f"kill{kill:g}")
            specs.append(PointSpec.build(
                run_churn_point, index=len(specs), labels=labels,
                seed=derive_seed(BASE_SEED, len(specs), *labels),
                num_nodes=num_nodes, loss_probability=loss,
                kill_fraction=kill, duration=duration))
    return specs


def bench_farm(benchmark):
    specs = build_reference_grid()
    cpu_count = os.cpu_count() or 1

    # Serial oracle: the ground truth every parallel run must reproduce.
    serial_started = time.perf_counter()
    serial = SweepFarm(specs, jobs=1).run()
    serial_wall = time.perf_counter() - serial_started
    serial_prints = [fingerprint(p) for p in serial.values()]

    # Parallel leg, timed as the benchmark's measured operation.
    parallel = benchmark.pedantic(
        lambda: SweepFarm(specs, jobs=PARALLEL_JOBS).run(),
        rounds=1, iterations=1)
    parallel_prints = [fingerprint(p) for p in parallel.values()]

    # The determinism contract, gated unconditionally: point-for-point
    # identical results regardless of worker count or completion order.
    assert serial.ok and parallel.ok
    fingerprint_match = parallel_prints == serial_prints
    assert fingerprint_match, "parallel farm run diverged from the serial oracle"

    speedup = serial_wall / parallel.wall_seconds if parallel.wall_seconds else 0.0
    print(f"\nserial {serial_wall:.2f}s, parallel (jobs={PARALLEL_JOBS}) "
          f"{parallel.wall_seconds:.2f}s, speedup {speedup:.2f}x "
          f"on {cpu_count} core(s)")

    OUTPUT_PATH.write_text(json.dumps({
        "experiment": "farm_reference_grid",
        "smoke": _SMOKE,
        "grid": {
            "point_function": specs[0].func,
            "num_points": len(specs),
            "num_nodes": specs[0].kwargs["num_nodes"],
            "duration_simulated_s": specs[0].kwargs["duration"],
            "base_seed": BASE_SEED,
            "seeds": [s.seed for s in specs],
            "labels": [s.label for s in specs],
        },
        "cpu_count": cpu_count,
        "jobs": PARALLEL_JOBS,
        "serial_wall_seconds": serial_wall,
        "serial_point_wall_seconds": [
            round(o.wall_seconds, 6) for o in serial.outcomes],
        "parallel_wall_seconds": parallel.wall_seconds,
        "speedup": speedup,
        "fingerprint_match": fingerprint_match,
        "pool_rebuilds": parallel.pool_rebuilds,
        "fingerprints": serial_prints,
        "telemetry": parallel.telemetry(),
    }, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    print(f"wrote {OUTPUT_PATH.name}")

    # Honest speedup gate: only where the cores exist to deliver it.
    if cpu_count >= MIN_SPEEDUP_CORES:
        assert speedup >= MIN_SPEEDUP, (
            f"farm speedup {speedup:.2f}x below the {MIN_SPEEDUP}x floor "
            f"on a {cpu_count}-core host")
