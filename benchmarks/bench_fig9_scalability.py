"""Figure 9: scalability of active resolution with the top-layer size.

Paper reference: Formula 2 (Delay(n) = 0.468 ms + 104.747 ms·(n−1))
extrapolated to n = 10 stays below one second.  The reproduction measures the
delay for top layers of 2..10 writers, fits the same linear model and checks
the paper's qualitative claims: linear growth, background resolution no more
expensive than active, and sub-second delay at ten simultaneous writers.
"""

from __future__ import annotations

import os

import numpy as np

from repro.experiments.fig9_scalability import format_report, run_scalability_experiment
from repro.farm import default_jobs
from repro.shard import default_shards


def bench_fig9_scalability(benchmark):
    jobs = default_jobs()
    # Host shape + parallelism config, alongside conftest's machine_info:
    # gates reading BENCH_fig9.json can condition on them (see BENCH_farm).
    benchmark.extra_info["cpu_count"] = os.cpu_count() or 1
    benchmark.extra_info["jobs"] = jobs
    benchmark.extra_info["shards"] = default_shards()
    result = benchmark.pedantic(
        lambda: run_scalability_experiment(max_top_layer=10, num_nodes=40, seed=19,
                                           jobs=jobs),
        rounds=1, iterations=1)
    print()
    print(format_report(result))

    # Delay grows with the top-layer size and the growth is roughly linear:
    # the fitted line explains the measurements well.
    assert result.active_delays[-1] > result.active_delays[0]
    predictions = np.array([result.fitted.predict(n) for n in result.sizes])
    measured = np.array(result.active_delays)
    correlation = np.corrcoef(predictions, measured)[0, 1]
    assert correlation > 0.9

    # The paper's headline: even ten simultaneous writers resolve in < 1 s.
    assert max(result.active_delays) < 1.0
    assert result.fitted.predict(10) < 1.0

    # Background resolution (Formula 3) has no phase-1 cost and is not slower.
    mean_active = float(np.mean(result.active_delays))
    mean_background = float(np.mean(result.background_delays))
    assert mean_background <= mean_active * 1.2
