"""Figure 7(a)/(b): the adaptive interface with hint levels 95 % and 85 %.

Regenerates the consistency-level-versus-time series of Figures 7(a) and
7(b): 40 nodes, four far-apart writers updating every 5 s for 100 s, sampled
every 5 s.  Paper reference points: the lowest user-view level is ≈ 94 % for
the 95 % hint and ≈ 84 % for the 85 % hint, and IDEA restores the level
within one sampling interval of every dip.
"""

from __future__ import annotations

from repro.experiments.fig7_hint import format_report, run_hint_experiment


def bench_fig7a_hint_95(benchmark):
    result = benchmark.pedantic(
        lambda: run_hint_experiment(hint_level=0.95, num_nodes=40, duration=100.0,
                                    seed=11),
        rounds=1, iterations=1)
    print()
    print(format_report(result))
    # Shape checks mirroring the paper's observations: the user-view level
    # never falls more than a few points below the hint (the paper reports a
    # lowest value of 94% for the 95% hint) because every violation triggers
    # an active resolution that completes well within one sampling interval.
    assert result.active_resolutions > 0
    assert 0.85 < result.lowest_worst_level < 1.0
    assert result.lowest_worst_level > result.hint_level - 0.06


def bench_fig7b_hint_85(benchmark):
    result = benchmark.pedantic(
        lambda: run_hint_experiment(hint_level=0.85, num_nodes=40, duration=100.0,
                                    seed=11),
        rounds=1, iterations=1)
    print()
    print(format_report(result))
    assert result.active_resolutions > 0
    assert 0.70 < result.lowest_worst_level < 0.95


def bench_fig7_hint_ordering(benchmark):
    """Lowering the hint lowers the maintained level and the resolution count."""
    def run_both():
        a = run_hint_experiment(hint_level=0.95, num_nodes=40, duration=100.0, seed=11)
        b = run_hint_experiment(hint_level=0.85, num_nodes=40, duration=100.0, seed=11)
        return a, b

    high, low = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert low.lowest_worst_level < high.lowest_worst_level
    assert low.active_resolutions < high.active_resolutions
