"""Table 3: communication overhead of background resolution (booking app).

Paper reference: running the background-resolution scheme every 20 seconds
for 100 seconds exchanged 168 messages; every 40 seconds, 96 messages —
overhead proportional to the resolution frequency, ≈ 44 messages per round
(Formula 5), amounting to ≈ 1.68 KB/s of bandwidth.  The reproduction's
absolute per-round count is lower (installs batch missing updates into one
message; see EXPERIMENTS.md) but the proportionality and the per-round
invariance across schedules are preserved, and Formula 4's optimal-rate
derivation is exercised on the measured cost.
"""

from __future__ import annotations

from repro.experiments.tab3_overhead import format_report, run_overhead_experiment


def bench_tab3_overhead(benchmark):
    result = benchmark.pedantic(
        lambda: run_overhead_experiment(periods=(20.0, 40.0), duration=100.0,
                                        num_nodes=40, seed=23),
        rounds=1, iterations=1)
    print()
    print(format_report(result))

    fast, slow = result.runs
    # More frequent resolution ⇒ more rounds ⇒ more messages.
    assert fast.background_rounds > slow.background_rounds
    assert fast.resolution_messages > slow.resolution_messages
    # Per-round cost is (roughly) schedule-independent.
    per_fast = fast.resolution_messages / max(fast.background_rounds, 1)
    per_slow = slow.resolution_messages / max(slow.background_rounds, 1)
    assert abs(per_fast - per_slow) / max(per_fast, per_slow) < 0.5
    # Formula 4: the optimal rate under a 20 % cap of 1 Mbps is comfortably
    # above the schedules used here (the paper's point that the overhead is
    # tiny even for dial-up-class links).
    assert result.optimal_rate(1_000_000, 0.2) > 1.0 / 20.0

    # Bandwidth: assuming 1 KB messages the fast run stays in the KB/s range.
    bandwidth_kbps = fast.resolution_messages * 1.0 / fast.duration
    assert bandwidth_kbps < 50.0
