"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's tables or figures (see
DESIGN.md §4 for the experiment index) and prints the paper-style rows; run
with ``pytest benchmarks/ --benchmark-only -s`` to see them.  The timing
captured by pytest-benchmark is the wall-clock cost of regenerating the
artefact on the simulator, useful for tracking regressions in the simulation
substrate itself.
"""

from __future__ import annotations

import os

import pytest


def pytest_benchmark_update_machine_info(config, machine_info):
    """Record host shape and parallelism config in ``--benchmark-json`` runs.

    ``BENCH_fig9.json`` (and any other pytest-benchmark JSON artefact) then
    carries enough context for regression gates to condition on the host —
    a 1-core runner cannot clear speedup floors, and the farm/shard worker
    counts explain the wall-clocks the numbers were taken under.
    """
    machine_info["cpu_count"] = os.cpu_count() or 1
    machine_info["farm_jobs"] = os.environ.get("FARM_JOBS", "")
    machine_info["shard_procs"] = os.environ.get("SHARD_PROCS", "")


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture
def once():
    return run_once
