"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's tables or figures (see
DESIGN.md §4 for the experiment index) and prints the paper-style rows; run
with ``pytest benchmarks/ --benchmark-only -s`` to see them.  The timing
captured by pytest-benchmark is the wall-clock cost of regenerating the
artefact on the simulator, useful for tracking regressions in the simulation
substrate itself.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture
def once():
    return run_once
