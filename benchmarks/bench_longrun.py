"""Long-run benchmark: flat per-op cost and bounded state over 10M ops.

The scenario is the stability-frontier stress case: every node is a writer
in the top layer, background resolution converges the replicas every few
seconds, and the traffic driver's periodic checkpoint/truncate sweep folds
everything below the frontier.  Three op budgets — 100k, 1M, 10M — share
one configuration, so any per-op cost or state growth with run length shows
up directly:

* **flat cost** — CPU µs/op at 10M must stay within ``FLATNESS_BUDGET`` of
  the 100k point (the committed seed degraded ~38% from 100k to 1M);
* **bounded state** — peak retained log entries must match across budgets
  and stay below ``LIVE_ENTRY_BOUND``, which is derived from the
  instability window, not the op count;
* **determinism** — a seeded replay of the 100k point issues bit-identical
  op/write/event/fold counts.

Peak memory is recorded per point (``ru_maxrss``) and, for the two smaller
points, via a separate tracemalloc-instrumented pass (tracemalloc's
overhead would distort the timed runs).

``LONGRUN_SMOKE=1`` shrinks the budgets (the "10M point at reduced
duration" CI smoke) and writes ``BENCH_longrun_smoke.json`` so the
committed ``BENCH_longrun.json`` baseline is left untouched for the
regression gate.
"""

from __future__ import annotations

import json
import os
import resource
import time
import tracemalloc
from pathlib import Path
from typing import Dict, Tuple

from repro.core.config import AdaptationMode, IdeaConfig
from repro.core.deployment import DeploymentBuilder, IdeaDeployment
from repro.overlay.temperature import TemperatureConfig
from repro.overlay.two_layer import OverlayConfig
from repro.workloads import (
    ClientPopulation,
    ConstantRate,
    OpMix,
    TrafficDriver,
    ZipfPopularity,
)

SMOKE = os.environ.get("LONGRUN_SMOKE", "") == "1"
OUTPUT_PATH = (Path(__file__).resolve().parent.parent
               / ("BENCH_longrun_smoke.json" if SMOKE else "BENCH_longrun.json"))

# ---- scenario ------------------------------------------------------------
LR_NODES = 16
LR_OBJECTS = 4
LR_CLIENTS = 64
LR_RATE = 40.0              # ops/s per client → 2560 ops/s offered
LR_ZIPF = 0.5
LR_READS = 0.9
LR_SEED = 23
BG_PERIOD = 2.0             # background resolution period (simulated s)
TRUNCATE_EVERY = 2.0
TRUNCATE_WINDOW = 5.0
OUTCOME_HISTORY = 256

#: op budgets; the smoke mode keeps the same shape at reduced duration
POINTS: Dict[str, int] = ({"100k": 100_000, "300k": 300_000, "1M": 1_000_000}
                          if SMOKE else
                          {"100k": 100_000, "1M": 1_000_000, "10M": 10_000_000})

#: peak retained-entry budget across ALL replicas: ingest is
#: write-fraction × op rate × members = 0.1 × 2560 × 16 = 4096 entries/s,
#: and the retention horizon is truncate_every + truncate_window + the
#: frontier lag (one background period + round time, ≈ 7 s) ≈ 22 s ⇒
#: ~90k worst case; the measured steady state is ~40k.  The budget is a
#: function of the window only — op count does not appear.
LIVE_ENTRY_BOUND = 65_536

#: allowed per-op CPU-time growth of the largest point over the smallest
FLATNESS_BUDGET = 1.25 if SMOKE else 1.10


def _build(max_ops: int) -> IdeaDeployment:
    config = IdeaConfig(mode=AdaptationMode.HINT_BASED, hint_level=0.0,
                        background_period=BG_PERIOD,
                        outcome_history=OUTCOME_HISTORY)
    overlay = OverlayConfig(temperature=TemperatureConfig(
        half_life=600.0, hot_threshold=0.5, max_top_size=LR_NODES,
        min_top_size=1))
    builder = DeploymentBuilder(num_nodes=LR_NODES, seed=LR_SEED,
                                overlay_config=overlay)
    for i in range(LR_OBJECTS):
        builder.add_object(f"obj{i}", config, start_background=True)
    population = ClientPopulation(
        name="web", num_clients=LR_CLIENTS,
        popularity=ZipfPopularity(LR_OBJECTS, LR_ZIPF), mix=OpMix(LR_READS),
        schedule=ConstantRate(LR_RATE))
    builder.add_traffic([population], max_ops=max_ops,
                        truncate_every=TRUNCATE_EVERY,
                        truncate_window=TRUNCATE_WINDOW,
                        truncate_keep_content=False)
    return builder.start_overlay_services().build()


#: steady-state warm-up driven (and excluded from timing) inside every
#: point's deployment: it covers the overlay ramp, the first resolution
#: rounds and the first truncations, so each measured span sees the system
#: in its long-run regime.  ≈ 20 simulated seconds at the offered rate.
WARMUP_OPS = 50_000
#: simulation advance granularity while measuring (bounds span overshoot)
RUN_CHUNK = 1.0


def _median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def run_point(max_ops: int, *, spans: int = 1,
              traced: bool = False) -> Dict[str, object]:
    """One committed long-run point (also rerun by the regression gate).

    Drives ``WARMUP_OPS`` untimed ops, then ``spans`` consecutive timed
    spans of ``max_ops`` each in the same deployment; the reported per-op
    figures are the per-span median, which keeps the short spans robust to
    scheduler noise.  Everything is deterministic — the regression gate
    replays the whole run and compares exact counts.
    """
    deployment = _build(WARMUP_OPS + spans * max_ops)
    driver: TrafficDriver = deployment.traffic
    sim = deployment.sim
    while driver.ops_issued < WARMUP_OPS and not driver.done:
        deployment.run(until=sim.now + RUN_CHUNK)
    if traced:
        tracemalloc.start()
    span_wall = []
    span_cpu = []
    span_ops = []
    for i in range(1, spans + 1):
        target = WARMUP_OPS + i * max_ops
        ops0 = driver.ops_issued
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        while driver.ops_issued < target and not driver.done:
            deployment.run(until=sim.now + RUN_CHUNK)
        span_cpu.append(time.process_time() - cpu0)
        span_wall.append(time.perf_counter() - wall0)
        span_ops.append(driver.ops_issued - ops0)
    traced_peak_mb = None
    if traced:
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        traced_peak_mb = round(peak / 1e6, 1)
    counters = driver.counters()
    resolutions = sum(len(m.resolutions) for m in deployment.objects.values())
    result: Dict[str, object] = {
        **counters,
        "events_processed": deployment.sim.events_processed,
        "simulated_seconds": round(sim.now, 6),
        "resolutions": resolutions,
        "retained_entries_at_end": deployment.retained_log_entries(),
        "warmup_ops": WARMUP_OPS,
        "spans": spans,
        "span_ops": span_ops,
        "wall_seconds": round(sum(span_wall), 3),
        "cpu_seconds": round(sum(span_cpu), 3),
        "us_per_op": round(_median(w / o * 1e6 for w, o
                                   in zip(span_wall, span_ops)), 2),
        "us_per_op_cpu": round(_median(c / o * 1e6 for c, o
                                       in zip(span_cpu, span_ops)), 2),
        "ru_maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }
    if traced_peak_mb is not None:
        result["tracemalloc_peak_mb"] = traced_peak_mb
    return result


def _fingerprint(result: Dict[str, object]) -> Tuple:
    return (result["ops_issued"], result["reads_issued"],
            result["writes_issued"], result["writes_applied"],
            result["events_processed"], result["entries_folded"],
            result["peak_retained_entries"], result["simulated_seconds"])


def bench_longrun(benchmark):
    points: Dict[str, Dict[str, object]] = {}
    ordered = sorted(POINTS.items(), key=lambda kv: kv[1])

    def run_all() -> Dict[str, Dict[str, object]]:
        # Interpreter/allocator warm-up so the first timed point is not
        # paying one-time costs the big points amortise away.
        run_point(10_000)
        for name, max_ops in ordered:
            # The smallest point takes the median of three consecutive
            # spans — a 100k span alone is short enough for scheduler
            # noise to exceed the flatness budget.
            spans = 3 if name == ordered[0][0] else 1
            points[name] = run_point(max_ops, spans=spans)
        return points

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    for name, result in points.items():
        print(f"  {name:>5}: {result['ops_issued']:>9} ops in "
              f"{result['wall_seconds']:8.1f}s wall / {result['cpu_seconds']:8.1f}s cpu "
              f"= {result['us_per_op']:6.1f} µs/op ({result['us_per_op_cpu']:6.1f} cpu), "
              f"peak retained {result['peak_retained_entries']}, "
              f"folded {result['entries_folded']}, "
              f"{result['resolutions']} resolutions, "
              f"rss {result['ru_maxrss_kb']} kB")

    small = points[ordered[0][0]]
    large = points[ordered[-1][0]]

    # ---- bounded state: the peak never depends on the op count ----------
    for name, result in points.items():
        assert result["peak_retained_entries"] <= LIVE_ENTRY_BOUND, \
            f"{name}: peak retained entries breached the window bound"
    assert (large["peak_retained_entries"]
            <= small["peak_retained_entries"] * 1.05 + 1024), \
        "peak retained entries grew with run length"

    # ---- flat per-op cost ----------------------------------------------
    flatness = large["us_per_op_cpu"] / small["us_per_op_cpu"]
    print(f"  flatness: {large['us_per_op_cpu']:.1f} / "
          f"{small['us_per_op_cpu']:.1f} µs/op (cpu) = {flatness:.3f}× "
          f"(budget ≤ {FLATNESS_BUDGET:.2f}×)")
    assert flatness <= FLATNESS_BUDGET, \
        f"per-op cost grew {flatness:.2f}× from {ordered[0][0]} to {ordered[-1][0]}"

    # ---- determinism: seeded replay of the smallest point ---------------
    replay = run_point(ordered[0][1], spans=3)
    assert _fingerprint(replay) == _fingerprint(small), \
        "long-run point did not replay bit-identically"
    print(f"  replay: identical ({small['ops_issued']} ops, "
          f"{small['writes_applied']} writes, "
          f"{small['events_processed']} events, "
          f"{small['entries_folded']} folded)")

    # ---- memory probes (tracemalloc distorts timing: separate passes) ---
    memory = {}
    for name, max_ops in ordered[:2]:
        memory[name] = run_point(max_ops, traced=True)["tracemalloc_peak_mb"]
        print(f"  tracemalloc peak ({name}): {memory[name]:.1f} MB")

    OUTPUT_PATH.write_text(json.dumps({
        "scenario": {
            "num_nodes": LR_NODES, "num_objects": LR_OBJECTS,
            "clients": LR_CLIENTS, "rate_per_client": LR_RATE,
            "zipf_skew": LR_ZIPF, "read_fraction": LR_READS,
            "seed": LR_SEED, "background_period": BG_PERIOD,
            "truncate_every": TRUNCATE_EVERY,
            "truncate_window": TRUNCATE_WINDOW,
            "outcome_history": OUTCOME_HISTORY,
            "smoke": SMOKE,
        },
        "live_entry_bound": LIVE_ENTRY_BOUND,
        "flatness_budget": FLATNESS_BUDGET,
        "flatness_ratio": round(flatness, 4),
        "tracemalloc_peak_mb": memory,
        "points": points,
    }, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    print(f"\nwrote {OUTPUT_PATH}")
