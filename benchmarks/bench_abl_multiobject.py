"""Ablation: multi-object node runtime vs the seed per-object architecture.

The seed reproduction instantiated an independent middleware stack per
(node, object) pair and rebuilt the local version digest from the full
update log on every consistency evaluation.  The node runtime shares a
revision-keyed digest cache across all objects a node hosts, so evaluations
triggered by peer digests cost O(1) instead of O(update log).

This benchmark does two things and persists both to ``BENCH_multiobject.json``
so later PRs have a perf trajectory to compare against:

* **sweep** — 8 nodes hosting 1..64 concurrently written objects through the
  ``DeploymentBuilder`` / ``NodeRuntime`` path, recording wall-clock and
  simulator events processed per point;
* **ablation** — the same workload with the shared digest cache disabled
  (the seed architecture's behaviour), asserting the runtime path is at
  least 1.5× faster per object once update logs reach realistic lengths.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.fig9_scalability import (
    format_multiobject_report,
    run_multiobject_experiment,
)
from repro.farm import default_jobs

#: minimum per-object speedup of the shared-cache runtime over the seed
#: architecture (acceptance floor; measured ~2× on the reference machine)
MIN_SPEEDUP = 1.5

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_multiobject.json"


def bench_abl_multiobject(benchmark):
    # Sweep the objects-per-node axis through the builder/runtime path,
    # including the 8 nodes × 64 objects point.
    sweep = benchmark.pedantic(
        lambda: run_multiobject_experiment(
            num_nodes=8, object_counts=(1, 8, 64),
            duration=40.0, write_period=2.0, seed=11,
            jobs=default_jobs()),
        rounds=1, iterations=1)

    # Head-to-head at a fixed object count with long update logs, where the
    # seed architecture's per-evaluation digest rebuild dominates.  These two
    # runs stay serial regardless of FARM_JOBS: the speedup below compares
    # per-point wall-clock, which farm workers contending for cores would skew.
    runtime_arch = run_multiobject_experiment(
        num_nodes=8, object_counts=(8,), duration=300.0, write_period=0.4,
        seed=11, shared_cache=True)
    seed_arch = run_multiobject_experiment(
        num_nodes=8, object_counts=(8,), duration=300.0, write_period=0.4,
        seed=11, shared_cache=False)
    speedup = (seed_arch.per_object_seconds()[0]
               / runtime_arch.per_object_seconds()[0])

    print()
    print(format_multiobject_report(sweep))
    print()
    print(format_multiobject_report(runtime_arch, seed_arch))

    def as_dict(result):
        return {
            "num_nodes": result.num_nodes,
            "writers_per_object": result.writers_per_object,
            "duration_simulated_s": result.duration,
            "shared_cache": result.shared_cache,
            "object_counts": result.object_counts,
            "wall_clock_seconds": result.wall_clock_seconds,
            "per_object_seconds": result.per_object_seconds(),
            "events_processed": result.events_processed,
            "writes_applied": result.writes_applied,
        }

    OUTPUT_PATH.write_text(json.dumps({
        "sweep": as_dict(sweep),
        "ablation": {
            "runtime_architecture": as_dict(runtime_arch),
            "seed_architecture": as_dict(seed_arch),
            "per_object_speedup": speedup,
        },
    }, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {OUTPUT_PATH.name}; per-object speedup {speedup:.2f}×")

    # Both architectures simulate the identical workload.
    assert seed_arch.events_processed == runtime_arch.events_processed
    assert seed_arch.writes_applied == runtime_arch.writes_applied

    # The sweep covers the 8×64 deployment and work scales with the load.
    assert sweep.object_counts[-1] == 64
    assert sweep.events_processed[-1] > sweep.events_processed[0]

    # The shared-cache runtime beats the seed architecture per object.
    assert speedup >= MIN_SPEEDUP
