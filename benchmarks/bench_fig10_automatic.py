"""Figure 10: consistency level of the automatic booking system over time.

Paper reference: with background resolution every 20 s the system's
consistency level is visibly higher than with the 40 s schedule; each round
snaps the level back up, giving a saw-tooth whose depth depends on the
period — the frequency/consistency trade-off of Section 6.3.2.
"""

from __future__ import annotations

from repro.experiments.fig10_automatic import format_report, run_automatic_experiment


def bench_fig10_automatic(benchmark):
    result = benchmark.pedantic(
        lambda: run_automatic_experiment(periods=(20.0, 40.0), duration=100.0,
                                         num_nodes=40, seed=29),
        rounds=1, iterations=1)
    print()
    print(format_report(result))

    fast, slow = result.runs
    mean_fast = result.mean_average_level(fast)
    mean_slow = result.mean_average_level(slow)
    # The 20-second schedule maintains a higher average consistency level.
    assert mean_fast > mean_slow
    # Saw-tooth recovery: after a background round the level climbs again,
    # so the series is not monotonically decreasing.
    increases = sum(1 for a, b in zip(slow.average_levels, slow.average_levels[1:])
                    if b > a + 1e-6)
    assert increases >= 1
    # No overselling occurred at this capacity in either run.
    assert fast.oversold == 0
