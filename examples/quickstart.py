#!/usr/bin/env python3
"""Quickstart: a minimal IDEA deployment in ~40 lines.

Builds an 8-node simulated wide-area deployment, registers one shared object
managed by IDEA in hint-based mode, lets two far-apart nodes issue
conflicting writes, and shows how the consistency level each node perceives
drops and is restored when a resolution is demanded.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import AdaptationMode, IdeaAPI, IdeaConfig, IdeaDeployment


def main() -> None:
    # 1. A simulated deployment: 8 nodes spread over a continental topology.
    deployment = IdeaDeployment(num_nodes=8, seed=1)

    # 2. Register a shared object with IDEA (hint-based mode, hint 90%).
    config = IdeaConfig(mode=AdaptationMode.HINT_BASED, hint_level=0.90,
                        background_period=None)
    deployment.register_object("notes", config, start_background=False)

    # 3. Configure IDEA through the Table-1 developer API.
    api = IdeaAPI(deployment, "notes", node_id="n00")
    api.set_consistency_metric(60, 60, 60)   # maxima for numerical/order/staleness
    api.set_weight(0.2, 0.6, 0.2)            # order preservation matters most
    api.set_resolution(2)                    # user-ID based conflict policy

    # 4. Two nodes write concurrently — replicas diverge.
    alpha = deployment.middleware("notes", "n00")
    beta = deployment.middleware("notes", "n03")
    alpha.write("alpha's paragraph", metadata_delta=1.0)
    deployment.run(until=2.0)
    beta.write("beta's paragraph", metadata_delta=1.0)
    deployment.run(until=4.0)

    print("perceived consistency after divergence:")
    for node in ("n00", "n03"):
        level = deployment.middleware("notes", node).current_level()
        print(f"  {node}: {level:.1%}")

    # 5. The user at n00 is not satisfied and demands an active resolution.
    alpha.demand_active_resolution()
    deployment.run(until=10.0)

    print("\nperceived consistency after active resolution:")
    for node in ("n00", "n03"):
        level = deployment.middleware("notes", node).current_level()
        print(f"  {node}: {level:.1%}")

    print("\ncontent now visible at n03:", deployment.middleware("notes", "n03").content())
    print("IDEA protocol messages exchanged:", deployment.idea_messages())


if __name__ == "__main__":
    main()
