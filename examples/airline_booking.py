#!/usr/bin/env python3
"""Airline ticket booking with fully automatic consistency control.

Four booking servers sell seats for the same flight.  Each server decides
sales based on its local replica, so between background-resolution rounds the
servers can collectively oversell.  IDEA runs in fully automatic mode: the
background-resolution frequency is adapted to the bandwidth budget, and the
application feeds over-/under-selling observations back so the controller
learns the frequency bounds described in Section 5.2 of the paper.

The example runs the same sales workload under a slow and a fast resolution
schedule and prints the business outcome (seats oversold, sales rejected) and
the consistency overhead side by side.

Run with::

    python examples/airline_booking.py
"""

from __future__ import annotations

from repro.apps.booking import BookingApp, default_booking_config
from repro.apps.workload import PoissonWorkload
from repro.core.deployment import IdeaDeployment


def run_schedule(background_period: float, *, capacity: int = 70,
                 duration: float = 150.0, seed: int = 9) -> dict:
    deployment = IdeaDeployment(num_nodes=12, seed=seed)
    servers = deployment.node_ids[:4]
    app = BookingApp(deployment, servers=servers, capacity=capacity,
                     config=default_booking_config(background_period=background_period))
    deployment.start_overlay_services()

    # Seed sales so the servers join the top layer, then let demand arrive as
    # a Poisson stream at each server (mean one request every 6 seconds).
    for i, server in enumerate(servers):
        deployment.sim.call_at(1.0 + i, lambda s=server, k=i: app.book(s, f"seed-{k}"),
                               label="seed")
    deployment.run(until=6.0)

    workload = PoissonWorkload(servers, mean_period=6.0, duration=duration,
                               start=deployment.sim.now,
                               rng=deployment.sim.random.stream("demand"))
    counter = {"n": 0}

    def issue(server: str, _k: int) -> None:
        counter["n"] += 1
        app.book(server, f"customer-{counter['n']}", price=180.0 + 10 * (counter["n"] % 5))

    workload.schedule(deployment.sim, issue)
    messages_before = deployment.resolution_messages()
    deployment.run(until=deployment.sim.now + duration + 10.0)

    outcome = app.outcome()
    if outcome.oversold:
        app.report_overselling()        # the controller learns to resolve faster

    worst, avg = app.sample()
    return {
        "period": background_period,
        "outcome": outcome,
        "revenue": app.total_revenue(),
        "resolution_messages": deployment.resolution_messages() - messages_before,
        "avg_level": avg,
        "adapted_period": next(iter(app.managed.middlewares.values())).controller.period,
    }


def main() -> None:
    print(f"{'schedule':>10} {'sold':>6} {'oversold':>9} {'rejected':>9} "
          f"{'revenue':>10} {'msgs':>6} {'avg level':>10} {'adapted period':>15}")
    for period in (60.0, 20.0):
        r = run_schedule(period)
        o = r["outcome"]
        print(f"{period:>8.0f}s {o.total_sold:>6} {o.oversold:>9} "
              f"{o.rejected_no_seats + o.rejected_blocked:>9} "
              f"${r['revenue']:>9.0f} {r['resolution_messages']:>6} "
              f"{r['avg_level']:>9.1%} {r['adapted_period']:>14.1f}s")
    print("\nA slower schedule risks overselling the flight; a faster one costs more")
    print("messages but keeps every server's view of the seat count tight.")


if __name__ == "__main__":
    main()
