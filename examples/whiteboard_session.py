#!/usr/bin/env python3
"""A collaborative white-board session with hint-based adaptive consistency.

Reproduces the flavour of the paper's Section 6.1 experiment on a smaller
deployment: four participants, spread across the continent, draw on a shared
virtual white board every five seconds.  Each participant gives IDEA a hint
("keep my view at least 95 % consistent"); whenever their level would fall
below the hint, IDEA resolves the inconsistency within a fraction of a
second.  Halfway through, one frustrated participant complains, which raises
their hint by Δ and tightens the consistency they see from then on.

Run with::

    python examples/whiteboard_session.py
"""

from __future__ import annotations

from repro.apps.users import ScriptedUser, UserAction, UserActionKind
from repro.apps.whiteboard import WhiteboardApp, default_whiteboard_config
from repro.core.deployment import IdeaDeployment


def main() -> None:
    deployment = IdeaDeployment(num_nodes=16, seed=5)
    config = default_whiteboard_config(hint_level=0.95)
    app = WhiteboardApp(deployment, config=config, start_background=False)
    deployment.start_overlay_services()

    participants = deployment.node_ids[:4]

    # Warm up the temperature overlay so all four drawers join the top layer.
    for i, person in enumerate(participants):
        deployment.sim.call_at(1.0 + i, lambda p=person: app.post(p, f"{p} joins"),
                               label="join")
    deployment.run(until=6.0)
    deployment.run_background_round(app.object_id)
    deployment.run(until=10.0)

    # Everyone draws every 5 seconds for 2 minutes.
    app.schedule_uniform_updates(participants, period=5.0, duration=120.0,
                                 start=deployment.sim.now,
                                 text_template="{writer} sketches shape {k}")

    # One participant complains at t≈70 s — their hint rises by Δ.
    complainer = participants[1]
    user = ScriptedUser(f"user-{complainer}", app.middleware(complainer),
                        [UserAction(time=deployment.sim.now + 60.0,
                                    kind=UserActionKind.COMPLAIN)])
    user.schedule()

    # Sample the levels every 10 seconds.
    samples = []

    def sample() -> None:
        worst, avg = app.sample(participants)
        samples.append((deployment.sim.now, worst, avg))

    start = deployment.sim.now
    for k in range(1, 13):
        deployment.sim.call_at(start + 10.0 * k + 0.2, sample, label="sample")

    deployment.run(until=start + 130.0)

    print("time(s)  worst-view  system-average")
    for t, worst, avg in samples:
        print(f"{t - start:7.1f}  {worst:9.1%}  {avg:13.1%}")

    resolutions = [r for r in app.managed.resolutions if not r.aborted]
    print(f"\nactive resolutions run: {len(resolutions)}")
    if resolutions:
        mean_delay = sum(r.total_delay for r in resolutions) / len(resolutions)
        print(f"mean resolution delay:  {mean_delay * 1e3:.1f} ms")
    print(f"hint of {complainer} after the complaint: "
          f"{app.middleware(complainer).controller.hint_level:.2f}")
    print(f"strokes visible on every top-layer board: {app.convergence()}")


if __name__ == "__main__":
    main()
