#!/usr/bin/env python3
"""Exploring the adaptive interface: hints, weights, and runtime changes.

This example walks through the three ways a user can steer IDEA at runtime
(Section 5.1 of the paper):

1. give an initial hint and let IDEA hold the line,
2. change the *weights* of the three error metrics when one of them (here:
   order preservation) is what actually bothers the user, and
3. lower the hint mid-run when weaker consistency becomes acceptable,
   trading a little staleness for fewer resolutions.

It prints the number of resolutions IDEA ran and the lowest observed level in
each phase, showing how the knobs change the system's behaviour.

Run with::

    python examples/adaptive_tuning.py
"""

from __future__ import annotations

from repro.apps.whiteboard import WhiteboardApp, default_whiteboard_config
from repro.core.api import IdeaAPI
from repro.core.deployment import IdeaDeployment


def run_phase(app, deployment, writers, *, duration: float) -> dict:
    """Run the uniform workload for one phase and summarise it."""
    start = deployment.sim.now
    resolutions_before = len([r for r in app.managed.resolutions if not r.aborted])
    app.schedule_uniform_updates(writers, period=5.0, duration=duration, start=start)

    lows = []

    def sample() -> None:
        levels = deployment.ground_truth_levels(app.object_id, writers)
        lows.append(min(levels.values()))

    for k in range(1, int(duration // 5) + 1):
        deployment.sim.call_at(start + 5.0 * k + 0.1, sample, label="sample")
    deployment.run(until=start + duration + 5.0)

    resolutions = len([r for r in app.managed.resolutions if not r.aborted])
    return {"lowest": min(lows) if lows else 1.0,
            "resolutions": resolutions - resolutions_before}


def main() -> None:
    deployment = IdeaDeployment(num_nodes=16, seed=21)
    app = WhiteboardApp(deployment, config=default_whiteboard_config(hint_level=0.95),
                        start_background=False)
    api = IdeaAPI(deployment, app.object_id, node_id="n00")
    writers = deployment.node_ids[:4]
    deployment.start_overlay_services()

    # Warm-up so the writers form the top layer.
    for i, writer in enumerate(writers):
        deployment.sim.call_at(1.0 + i, lambda w=writer: app.post(w, f"{w} warms up"),
                               label="warmup")
    deployment.run(until=6.0)
    deployment.run_background_round(app.object_id)
    deployment.run(until=10.0)

    print("phase 1 — hint 95%, equal weights")
    phase1 = run_phase(app, deployment, writers, duration=60.0)

    print("phase 2 — user cares about ordering: weights <0.15, 0.70, 0.15>")
    api.set_weight(0.15, 0.70, 0.15)
    phase2 = run_phase(app, deployment, writers, duration=60.0)

    print("phase 3 — relaxed hint 85%")
    api.set_hint(0.85)
    phase3 = run_phase(app, deployment, writers, duration=60.0)

    print(f"\n{'phase':<40} {'lowest level':>14} {'resolutions':>12}")
    for name, phase in (("hint 95%, equal weights", phase1),
                        ("hint 95%, order-heavy weights", phase2),
                        ("hint 85%, order-heavy weights", phase3)):
        print(f"{name:<40} {phase['lowest']:>13.1%} {phase['resolutions']:>12}")

    print("\nRaising the order weight changes what the level measures; lowering the")
    print("hint lets the level sag further before IDEA spends messages resolving it.")


if __name__ == "__main__":
    main()
